#include "sql/sql_translator.h"

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "sql/sql_lexer.h"
#include "sql/sql_parser.h"
#include "test_util.h"

namespace ivm {
namespace {

Program MustTranslate(const std::string& sql) {
  SqlTranslator tr;
  Status s = tr.AddScript(sql);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\nsql: " << sql;
  auto p = tr.Build();
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(SqlLexerTest, TokensAndComments) {
  auto tokens = SqlTokenize(
      "SELECT a.x, 'it''s' FROM t -- comment\nWHERE x <> 3.5;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].Is("select"));
  EXPECT_TRUE((*tokens)[0].Is("SELECT"));
  // 'it''s' unescapes to it's.
  bool found = false;
  for (const auto& t : *tokens) {
    if (t.type == SqlTokenType::kString) {
      EXPECT_EQ(t.text, "it's");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SqlParserTest, CreateTableAndView) {
  auto stmts = ParseSql(
      "CREATE TABLE link(s, d);"
      "CREATE VIEW hop(s, d) AS SELECT r1.s, r2.d FROM link r1, link r2 "
      "WHERE r1.d = r2.s;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  ASSERT_EQ(stmts->size(), 2u);
  EXPECT_EQ((*stmts)[0].kind, SqlStatement::Kind::kCreateTable);
  EXPECT_EQ((*stmts)[1].kind, SqlStatement::Kind::kCreateView);
  EXPECT_EQ((*stmts)[1].select.cores[0].tables.size(), 2u);
  EXPECT_EQ((*stmts)[1].select.cores[0].where.size(), 1u);
}

TEST(SqlParserTest, GroupByAndAggregates) {
  auto stmts = ParseSql(
      "CREATE VIEW t(r, total, n) AS SELECT region, SUM(amount), COUNT(*) "
      "FROM sales GROUP BY region;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const SqlSelectCore& core = (*stmts)[0].select.cores[0];
  EXPECT_EQ(core.group_by.size(), 1u);
  EXPECT_TRUE(core.items[1].expr.HasAggregate());
  EXPECT_EQ(core.items[2].expr.func, AggregateFunc::kCount);
}

TEST(SqlParserTest, UnionAndExcept) {
  auto stmts = ParseSql(
      "CREATE VIEW u AS SELECT x FROM a UNION ALL SELECT x FROM b "
      "UNION SELECT x FROM c;");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ((*stmts)[0].select.cores.size(), 3u);
  EXPECT_EQ((*stmts)[0].select.ops[0], SqlSetOp::kUnionAll);
  EXPECT_EQ((*stmts)[0].select.ops[1], SqlSetOp::kUnion);
}

TEST(SqlTranslatorTest, Example11HopView) {
  Program p = MustTranslate(
      "CREATE TABLE link(s, d);"
      "CREATE VIEW hop(s, d) AS SELECT r1.s, r2.d FROM link r1, link r2 "
      "WHERE r1.d = r2.s;");
  ASSERT_EQ(p.num_rules(), 1u);
  // The join variable is shared between the two atoms (unification).
  const Rule& rule = p.rule(0);
  EXPECT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.body[0].atom.terms[1].var(), rule.body[1].atom.terms[0].var());
}

TEST(SqlTranslatorTest, EndToEndHopMaintenance) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE link(s, d);"
      "CREATE VIEW hop(s, d) AS SELECT r1.s, r2.d FROM link r1, link r2 "
      "WHERE r1.d = r2.s;"));
  auto vm = ViewManager::Create(tr.Build().value()).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  IVM_ASSERT_OK(vm->Initialize(db));
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = vm->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").ToString(), "{(\"a\", \"e\"):-1}");
}

TEST(SqlTranslatorTest, ConstantsInWhere) {
  Program p = MustTranslate(
      "CREATE TABLE e(x, y);"
      "CREATE VIEW v(y) AS SELECT y FROM e WHERE x = 5;");
  // Constant folded into the atom pattern.
  const Rule& rule = p.rule(0);
  EXPECT_TRUE(rule.body[0].atom.terms[0].IsConstant());
  EXPECT_EQ(rule.body[0].atom.terms[0].constant(), Value::Int(5));
}

TEST(SqlTranslatorTest, ResidualComparisons) {
  Program p = MustTranslate(
      "CREATE TABLE e(x, y);"
      "CREATE VIEW v(x) AS SELECT x FROM e WHERE y > 3 AND x <> y;");
  const Rule& rule = p.rule(0);
  ASSERT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(rule.body[1].kind, Literal::Kind::kComparison);
  EXPECT_EQ(rule.body[2].kind, Literal::Kind::kComparison);
}

TEST(SqlTranslatorTest, GroupByOverSingleTable) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE sales(region, amount);"
      "CREATE VIEW totals(region, total) AS "
      "SELECT region, SUM(amount) FROM sales GROUP BY region;"));
  auto vm = ViewManager::Create(tr.Build().value()).value();
  Database db;
  testing_util::MustLoadFacts(&db, "sales(east, 10). sales(east, 5). sales(west, 2).");
  IVM_ASSERT_OK(vm->Initialize(db));
  const Relation& totals = *vm->snapshot().Get("totals").value();
  EXPECT_TRUE(totals.Contains(Tup("east", 15)));
  EXPECT_TRUE(totals.Contains(Tup("west", 2)));

  ChangeSet changes;
  changes.Insert("sales", Tup("west", 8));
  ChangeSet out = vm->Apply(changes).value();
  EXPECT_EQ(out.Delta("totals").Count(Tup("west", 2)), -1);
  EXPECT_EQ(out.Delta("totals").Count(Tup("west", 10)), 1);
}

TEST(SqlTranslatorTest, GroupByOverJoinUsesHelperView) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE link(s, d, c);"
      "CREATE VIEW min_two_hop(s, d, m) AS "
      "SELECT r1.s, r2.d, MIN(r1.c + r2.c) FROM link r1, link r2 "
      "WHERE r1.d = r2.s GROUP BY r1.s, r2.d;"));
  auto vm = ViewManager::Create(tr.Build().value()).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a, b, 2). link(b, c, 3). link(a, d, 1). link(d, c, 1).");
  IVM_ASSERT_OK(vm->Initialize(db));
  EXPECT_TRUE(vm->snapshot().Get("min_two_hop").value()->Contains(Tup("a", "c", 2)));

  ChangeSet changes;
  changes.Delete("link", Tup("d", "c", 1));
  ChangeSet out = vm->Apply(changes).value();
  EXPECT_EQ(out.Delta("min_two_hop").Count(Tup("a", "c", 2)), -1);
  EXPECT_EQ(out.Delta("min_two_hop").Count(Tup("a", "c", 5)), 1);
}

TEST(SqlTranslatorTest, MultipleAggregatesShareGroups) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE v(g, x);"
      "CREATE VIEW stats(g, lo, hi, n) AS "
      "SELECT g, MIN(x), MAX(x), COUNT(*) FROM v GROUP BY g;"));
  auto vm = ViewManager::Create(tr.Build().value()).value();
  Database db;
  testing_util::MustLoadFacts(&db, "v(a, 3). v(a, 9). v(b, 4).");
  IVM_ASSERT_OK(vm->Initialize(db));
  const Relation& stats = *vm->snapshot().Get("stats").value();
  EXPECT_TRUE(stats.Contains(Tup("a", 3, 9, 2)));
  EXPECT_TRUE(stats.Contains(Tup("b", 4, 4, 1)));
}

TEST(SqlTranslatorTest, UnionAllBecomesTwoRules) {
  Program p = MustTranslate(
      "CREATE TABLE a(x); CREATE TABLE b(x);"
      "CREATE VIEW u(x) AS SELECT x FROM a UNION ALL SELECT x FROM b;");
  EXPECT_EQ(p.num_rules(), 2u);
}

TEST(SqlTranslatorTest, ExceptBecomesNegation) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE a(x); CREATE TABLE b(x);"
      "CREATE VIEW d(x) AS SELECT x FROM a EXCEPT SELECT x FROM b;"));
  auto vm = ViewManager::Create(tr.Build().value()).value();
  Database db;
  testing_util::MustLoadFacts(&db, "a(1). a(2). b(2).");
  IVM_ASSERT_OK(vm->Initialize(db));
  EXPECT_EQ(vm->snapshot().Get("d").value()->ToString(), "{(1)}");
  ChangeSet changes;
  changes.Delete("b", Tup(2));
  ChangeSet out = vm->Apply(changes).value();
  EXPECT_EQ(out.Delta("d").Count(Tup(2)), 1);
}

TEST(SqlTranslatorTest, ViewsCanReferenceViews) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE link(s, d);"
      "CREATE VIEW hop(s, d) AS SELECT r1.s, r2.d FROM link r1, link r2 "
      "WHERE r1.d = r2.s;"
      "CREATE VIEW tri_hop(s, d) AS SELECT h.s, l.d FROM hop h, link l "
      "WHERE h.d = l.s;"));
  auto p = tr.Build().value();
  EXPECT_EQ(p.num_rules(), 2u);
  EXPECT_EQ(p.predicate(p.Lookup("tri_hop").value()).stratum, 2);
}

TEST(SqlTranslatorTest, SelectItemArithmetic) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE e(x, y);"
      "CREATE VIEW v(s) AS SELECT x + y * 2 FROM e;"));
  auto vm = ViewManager::Create(tr.Build().value()).value();
  Database db;
  testing_util::MustLoadFacts(&db, "e(1, 3).");
  IVM_ASSERT_OK(vm->Initialize(db));
  EXPECT_TRUE(vm->snapshot().Get("v").value()->Contains(Tup(7)));
}

TEST(SqlTranslatorTest, ErrorOnUnknownTable) {
  SqlTranslator tr;
  EXPECT_FALSE(tr.AddScript("CREATE VIEW v(x) AS SELECT x FROM nope;").ok());
}

TEST(SqlTranslatorTest, ErrorOnAmbiguousColumn) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript("CREATE TABLE a(x); CREATE TABLE b(x);"));
  EXPECT_FALSE(tr.AddScript("CREATE VIEW v(x) AS SELECT x FROM a, b;").ok());
}

TEST(SqlTranslatorTest, ErrorOnNonGroupedColumn) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript("CREATE TABLE s(g, x);"));
  EXPECT_FALSE(
      tr.AddScript("CREATE VIEW v(x, m) AS SELECT x, MIN(x) FROM s GROUP BY g;")
          .ok());
}

TEST(SqlTranslatorTest, ErrorOnDuplicateView) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript("CREATE TABLE a(x);"));
  IVM_ASSERT_OK(tr.AddScript("CREATE VIEW v(x) AS SELECT x FROM a;"));
  EXPECT_EQ(tr.AddScript("CREATE VIEW v(x) AS SELECT x FROM a;").code(),
            StatusCode::kAlreadyExists);
}

TEST(SqlTranslatorTest, ColumnsOfTracksViews) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE t(a, b); CREATE VIEW v AS SELECT b, a FROM t;"));
  EXPECT_EQ(tr.ColumnsOf("v").value(),
            (std::vector<std::string>{"b", "a"}));
}

TEST(SqlTranslatorTest, ContradictoryConstantsYieldEmptyView) {
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(
      "CREATE TABLE t(a, b);"
      "CREATE VIEW v(a) AS SELECT a FROM t WHERE a = 1 AND a = 2;"));
  auto vm = ViewManager::Create(tr.Build().value()).value();
  Database db;
  testing_util::MustLoadFacts(&db, "t(1, 2). t(2, 3).");
  IVM_ASSERT_OK(vm->Initialize(db));
  EXPECT_TRUE(vm->snapshot().Get("v").value()->empty());
}

}  // namespace
}  // namespace ivm
