#include "core/dred.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

constexpr const char* kTcProgram =
    "base edge(X, Y).\n"
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Y) :- path(X, Z) & edge(Z, Y).";

std::unique_ptr<DRedMaintainer> MakeTc(const std::string& facts) {
  auto m = DRedMaintainer::Create(MustParseProgram(kTcProgram));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  testing_util::MustLoadFacts(&db, facts);
  (*m)->Initialize(db).CheckOK();
  return std::move(m).value();
}

/// Recomputes the maintainer's program from its own base snapshot and checks
/// every view matches (Theorem 7.1).
void ExpectMatchesRecompute(const DRedMaintainer& m) {
  const Program& p = m.program();
  Database db;
  for (PredicateId b : p.BasePredicates()) {
    const auto& info = p.predicate(b);
    db.CreateRelation(info.name, info.arity).CheckOK();
    auto rel = m.GetRelation(info.name);
    ASSERT_TRUE(rel.ok());
    db.mutable_relation(info.name) = **rel;
  }
  Evaluator ev(p, {Semantics::kSet, false});
  std::map<PredicateId, Relation> views;
  ev.EvaluateAll(db, &views).CheckOK();
  for (const auto& [pred, expected] : views) {
    auto actual = m.GetRelation(p.predicate(pred).name);
    ASSERT_TRUE(actual.ok());
    EXPECT_TRUE((*actual)->SameSet(expected))
        << p.predicate(pred).name << "\nactual:   " << (*actual)->ToString()
        << "\nexpected: " << expected.ToString();
  }
}

TEST(DRedTest, Example11OverDeleteAndRederive) {
  // Deleting link(a,b): DRed over-deletes hop(a,c) and hop(a,e), then
  // rederives hop(a,c) (alternative derivation a->d->c).
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).")).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  m->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").size(), 1u);
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "e")), -1);
  EXPECT_TRUE(m->GetRelation("hop").value()->Contains(Tup("a", "c")));
}

TEST(DRedTest, TcDeleteChainEdge) {
  auto m = MakeTc("edge(0,1). edge(1,2). edge(2,3). edge(3,4).");
  ChangeSet changes;
  changes.Delete("edge", Tup(2, 3));
  ChangeSet out = m->Apply(changes).value();
  // Pairs crossing the cut (i<=2, j>=3): (0,3),(0,4),(1,3),(1,4),(2,3),(2,4).
  EXPECT_EQ(out.Delta("path").size(), 6u);
  EXPECT_EQ(out.Delta("path").Count(Tup(0, 4)), -1);
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, TcDeleteWithAlternativePathRederives) {
  // Diamond: 0->1->3 and 0->2->3; deleting 0->1 keeps 0~>3.
  auto m = MakeTc("edge(0,1). edge(1,3). edge(0,2). edge(2,3). edge(3,4).");
  ChangeSet changes;
  changes.Delete("edge", Tup(0, 1));
  ChangeSet out = m->Apply(changes).value();
  const Relation& d = out.Delta("path");
  EXPECT_EQ(d.Count(Tup(0, 1)), -1);
  EXPECT_FALSE(d.Contains(Tup(0, 3)));  // rederived via 0->2->3
  EXPECT_FALSE(d.Contains(Tup(0, 4)));
  EXPECT_TRUE(m->GetRelation("path").value()->Contains(Tup(0, 4)));
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, TcCycleDeletionRemovesSelfSupport) {
  // A pure cycle: deleting one edge must delete the tuples that only
  // supported each other (the case where naive per-tuple rederivation
  // without over-deletion fails).
  auto m = MakeTc("edge(0,1). edge(1,2). edge(2,0).");
  EXPECT_EQ(m->GetRelation("path").value()->size(), 9u);
  ChangeSet changes;
  changes.Delete("edge", Tup(2, 0));
  m->Apply(changes).value();
  const Relation& path = *m->GetRelation("path").value();
  // Remaining: chain 0->1->2.
  EXPECT_EQ(path.size(), 3u);
  EXPECT_TRUE(path.Contains(Tup(0, 2)));
  EXPECT_FALSE(path.Contains(Tup(0, 0)));
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, TcInsertions) {
  auto m = MakeTc("edge(0,1). edge(2,3).");
  ChangeSet changes;
  changes.Insert("edge", Tup(1, 2));
  ChangeSet out = m->Apply(changes).value();
  const Relation& d = out.Delta("path");
  EXPECT_EQ(d.Count(Tup(1, 2)), 1);
  EXPECT_EQ(d.Count(Tup(0, 2)), 1);
  EXPECT_EQ(d.Count(Tup(0, 3)), 1);
  EXPECT_EQ(d.Count(Tup(1, 3)), 1);
  EXPECT_EQ(d.size(), 4u);
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, MixedInsertAndDelete) {
  auto m = MakeTc("edge(0,1). edge(1,2). edge(2,3).");
  ChangeSet changes;
  changes.Delete("edge", Tup(1, 2));
  changes.Insert("edge", Tup(1, 3));
  ChangeSet out = m->Apply(changes).value();
  const Relation& path = *m->GetRelation("path").value();
  EXPECT_TRUE(path.Contains(Tup(0, 3)));   // via new 1->3
  EXPECT_FALSE(path.Contains(Tup(0, 2)));  // lost
  EXPECT_FALSE(out.Delta("path").Contains(Tup(0, 3)));  // deleted+readded nets out
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, MutualRecursionMaintenance) {
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base e(X, Y).\n"
      "odd(X, Y) :- e(X, Y).\n"
      "odd(X, Y) :- even(X, Z) & e(Z, Y).\n"
      "even(X, Y) :- odd(X, Z) & e(Z, Y).")).value();
  Database db;
  db.CreateRelation("e", 2).CheckOK();
  for (int i = 0; i < 6; ++i) db.mutable_relation("e").Add(Tup(i, i + 1), 1);
  m->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("e", Tup(3, 4));
  changes.Insert("e", Tup(3, 5));
  m->Apply(changes).value();
  ExpectMatchesRecompute(*m);
  // 0..3 (odd length 3), then 3->5 (len 4 from 0): even.
  EXPECT_TRUE(m->GetRelation("even").value()->Contains(Tup(0, 5)));
}

TEST(DRedTest, NegationStratifiedMaintenance) {
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base edge(X, Y). base blocked(X, Y).\n"
      "ok(X, Y) :- edge(X, Y) & !blocked(X, Y).\n"
      "path(X, Y) :- ok(X, Y).\n"
      "path(X, Y) :- path(X, Z) & ok(Z, Y).")).value();
  Database db;
  testing_util::MustLoadFacts(&db, "edge(1,2). edge(2,3). edge(3,4).");
  db.CreateRelation("blocked", 2).CheckOK();
  m->Initialize(db).CheckOK();
  EXPECT_TRUE(m->GetRelation("path").value()->Contains(Tup(1, 4)));

  // Blocking edge(2,3) cuts paths through it.
  ChangeSet changes;
  changes.Insert("blocked", Tup(2, 3));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("path").Count(Tup(1, 4)), -1);
  EXPECT_FALSE(m->GetRelation("path").value()->Contains(Tup(1, 3)));
  ExpectMatchesRecompute(*m);

  // Unblocking restores them.
  ChangeSet undo;
  undo.Delete("blocked", Tup(2, 3));
  ChangeSet out2 = m->Apply(undo).value();
  EXPECT_EQ(out2.Delta("path").Count(Tup(1, 4)), 1);
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, AggregationOverRecursionMaintenance) {
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- path(X, Z) & edge(Z, Y).\n"
      "reach_count(X, N) :- groupby(path(X, Y), [X], N = count(*)).")).value();
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  for (int i = 0; i < 4; ++i) db.mutable_relation("edge").Add(Tup(i, i + 1), 1);
  m->Initialize(db).CheckOK();
  EXPECT_TRUE(m->GetRelation("reach_count").value()->Contains(Tup(0, 4)));

  ChangeSet changes;
  changes.Delete("edge", Tup(3, 4));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("reach_count").Count(Tup(0, 4)), -1);
  EXPECT_EQ(out.Delta("reach_count").Count(Tup(0, 3)), 1);
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, MinCostAggregateMaintenance) {
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base link(S, D, C).\n"
      "hop(S, D, C1 + C2) :- link(S, I, C1) & link(I, D, C2).\n"
      "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).")).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a, b, 1). link(b, c, 2). link(a, d, 5). link(d, c, 1).");
  m->Initialize(db).CheckOK();
  EXPECT_TRUE(m->GetRelation("min_cost_hop").value()->Contains(Tup("a", "c", 3)));

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b", 1));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("min_cost_hop").Count(Tup("a", "c", 3)), -1);
  EXPECT_EQ(out.Delta("min_cost_hop").Count(Tup("a", "c", 6)), 1);
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, AddRuleIncrementally) {
  // Section 7: view redefinition. Add a reverse-edge rule to TC.
  auto m = MakeTc("edge(0,1). edge(1,2).");
  EXPECT_FALSE(m->GetRelation("path").value()->Contains(Tup(1, 0)));
  ChangeSet out = m->AddRuleText("path(X, Y) :- edge(Y, X).").value();
  const Relation& path = *m->GetRelation("path").value();
  EXPECT_TRUE(path.Contains(Tup(1, 0)));   // directly from the new rule
  EXPECT_TRUE(path.Contains(Tup(2, 2)));   // path(2,1) (new rule) + edge(1,2)
  EXPECT_TRUE(path.Contains(Tup(1, 1)));   // path(1,0) + edge(0,1)
  EXPECT_GT(out.Delta("path").size(), 0u);
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, RemoveRuleIncrementally) {
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- path(X, Z) & edge(Z, Y).")).value();
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  for (int i = 0; i < 4; ++i) db.mutable_relation("edge").Add(Tup(i, i + 1), 1);
  m->Initialize(db).CheckOK();
  EXPECT_TRUE(m->GetRelation("path").value()->Contains(Tup(0, 4)));

  // Remove the recursive rule: path collapses to edge.
  ChangeSet out = m->RemoveRule(1).value();
  EXPECT_EQ(m->GetRelation("path").value()->size(), 4u);
  EXPECT_EQ(out.Delta("path").Count(Tup(0, 4)), -1);
  ExpectMatchesRecompute(*m);
  EXPECT_EQ(m->program().num_rules(), 1u);
}

TEST(DRedTest, RemoveBaseCaseRuleEmptiesView) {
  auto m = MakeTc("edge(0,1). edge(1,2).");
  // Removing the base-case rule leaves the recursive rule with nothing to
  // build on: path empties.
  m->RemoveRule(0).value();
  EXPECT_TRUE(m->GetRelation("path").value()->empty());
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, AddRuleThatIsUnsafeRollsBack) {
  auto m = MakeTc("edge(0,1).");
  auto bad = ParseRule("path(X, Y) :- edge(X, X).");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(m->AddRule(*bad).ok());
  // Maintainer still works.
  ChangeSet changes;
  changes.Insert("edge", Tup(1, 2));
  EXPECT_TRUE(m->Apply(changes).ok());
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, ApplyRejectsSetViolations) {
  auto m = MakeTc("edge(0,1).");
  ChangeSet changes;
  changes.Delete("edge", Tup(5, 5));
  EXPECT_EQ(m->Apply(changes).status().code(), StatusCode::kFailedPrecondition);
}

TEST(DRedTest, RedundantInsertIsNoop) {
  auto m = MakeTc("edge(0,1).");
  ChangeSet changes;
  changes.Insert("edge", Tup(0, 1));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_TRUE(out.empty());
}

TEST(DRedTest, NonrecursiveProgramsWorkToo) {
  // DRed "can also be used to maintain nonrecursive views" (Section 7).
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).")).value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Insert("link", Tup("c", "d"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("b", "d")), 1);
  ExpectMatchesRecompute(*m);
}

TEST(DRedTest, LargeRandomSequenceMatchesRecompute) {
  auto m = MakeTc("edge(0,1). edge(1,2). edge(2,0). edge(2,3). edge(3,4). edge(4,2).");
  struct Op { bool ins; int a, b; };
  const Op ops[] = {
      {false, 2, 0}, {true, 0, 3}, {false, 3, 4}, {true, 4, 0},
      {true, 3, 4},  {false, 0, 1}, {true, 1, 0}, {false, 4, 2},
  };
  for (const Op& op : ops) {
    ChangeSet changes;
    if (op.ins) {
      changes.Insert("edge", Tup(op.a, op.b));
    } else {
      changes.Delete("edge", Tup(op.a, op.b));
    }
    auto r = m->Apply(changes);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectMatchesRecompute(*m);
  }
}

}  // namespace
}  // namespace ivm
