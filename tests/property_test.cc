// Randomized differential testing: every incremental maintainer must agree
// with the from-scratch recompute oracle on arbitrary update sequences —
// Theorem 4.1 (counting) and Theorem 7.1 (DRed), checked empirically over
// many programs, workload shapes, and seeds.

#include <random>

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/update_gen.h"

namespace ivm {
namespace {

struct PropertyCase {
  const char* name;
  const char* program;
  /// Base relations to mutate, with their arity (2 = graph edges,
  /// 3 = cost edges).
  std::vector<std::pair<const char*, int>> base;
  bool recursive = false;
  bool has_aggregates = false;
};

const PropertyCase kCases[] = {
    {"hop",
     "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).",
     {{"link", 2}}},
    {"tri_hop",
     "base link(S, D).\n"
     "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
     "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).",
     {{"link", 2}}},
    {"union_diamond",
     "base a(X, Y). base b(X, Y).\n"
     "u(X, Y) :- a(X, Y).\n"
     "u(X, Y) :- b(X, Y).\n"
     "uu(X, Z) :- u(X, Y) & u(Y, Z).",
     {{"a", 2}, {"b", 2}}},
    {"negation",
     "base link(S, D).\n"
     "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
     "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).\n"
     "only_tri_hop(X, Y) :- tri_hop(X, Y) & !hop(X, Y).",
     {{"link", 2}}},
    {"negation_two_rels",
     "base e(X, Y). base bad(X, Y).\n"
     "good(X, Y) :- e(X, Y) & !bad(X, Y).\n"
     "good2(X, Z) :- good(X, Y) & good(Y, Z).",
     {{"e", 2}, {"bad", 2}}},
    {"aggregates",
     "base e(X, Y).\n"
     "deg(X, N) :- groupby(e(X, Y), [X], N = count(*)).\n"
     "busy(X) :- deg(X, N), N > 2.",
     {{"e", 2}},
     /*recursive=*/false,
     /*has_aggregates=*/true},
    {"min_cost",
     "base link(S, D, C).\n"
     "hop(S, D, C1 + C2) :- link(S, I, C1) & link(I, D, C2).\n"
     "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).\n"
     "sum_out(S, T) :- groupby(link(S, D, C), [S], T = sum(C)).",
     {{"link", 3}},
     /*recursive=*/false,
     /*has_aggregates=*/true},
    {"tc",
     "base edge(X, Y).\n"
     "path(X, Y) :- edge(X, Y).\n"
     "path(X, Y) :- path(X, Z) & edge(Z, Y).",
     {{"edge", 2}},
     /*recursive=*/true},
    {"mutual_recursion",
     "base e(X, Y).\n"
     "odd(X, Y) :- e(X, Y).\n"
     "odd(X, Y) :- even(X, Z) & e(Z, Y).\n"
     "even(X, Y) :- odd(X, Z) & e(Z, Y).",
     {{"e", 2}},
     /*recursive=*/true},
    {"recursion_negation",
     "base edge(X, Y). base blocked(X, Y).\n"
     "ok(X, Y) :- edge(X, Y) & !blocked(X, Y).\n"
     "path(X, Y) :- ok(X, Y).\n"
     "path(X, Y) :- path(X, Z) & ok(Z, Y).",
     {{"edge", 2}, {"blocked", 2}},
     /*recursive=*/true},
    {"negation_over_recursion",
     "base edge(X, Y). base target(X, Y).\n"
     "path(X, Y) :- edge(X, Y).\n"
     "path(X, Y) :- path(X, Z) & edge(Z, Y).\n"
     "missing(X, Y) :- target(X, Y) & !path(X, Y).",
     {{"edge", 2}, {"target", 2}},
     /*recursive=*/true},
    {"recursion_aggregation",
     "base edge(X, Y).\n"
     "path(X, Y) :- edge(X, Y).\n"
     "path(X, Y) :- path(X, Z) & edge(Z, Y).\n"
     "reach(X, N) :- groupby(path(X, Y), [X], N = count(*)).",
     {{"edge", 2}},
     /*recursive=*/true,
     /*has_aggregates=*/true},
};

struct PropertyParam {
  int case_index;
  Strategy strategy;
  Semantics semantics;
  uint64_t seed;
  /// Constrain edges to a < b so all derivations are acyclic (required for
  /// recursive counting, whose counts must stay finite).
  bool dag_only = false;

  std::string Name() const {
    std::string out = kCases[case_index].name;
    out += "_";
    out += StrategyName(strategy);
    for (char& ch : out) {
      if (ch == '-') ch = '_';
    }
    out += semantics == Semantics::kDuplicate ? "_dup" : "_set";
    out += "_s" + std::to_string(seed);
    if (dag_only) out += "_dag";
    return out;
  }
};

std::vector<PropertyParam> MakeParams() {
  std::vector<PropertyParam> params;
  for (int c = 0; c < static_cast<int>(std::size(kCases)); ++c) {
    const PropertyCase& pc = kCases[c];
    for (uint64_t seed : {1u, 2u, 3u}) {
      if (!pc.recursive) {
        params.push_back({c, Strategy::kCounting, Semantics::kSet, seed});
        params.push_back({c, Strategy::kCounting, Semantics::kDuplicate, seed});
      }
      params.push_back({c, Strategy::kDRed, Semantics::kSet, seed});
      if (!pc.has_aggregates) {
        params.push_back({c, Strategy::kPF, Semantics::kSet, seed});
      }
      // Recursive counting needs acyclic derivations: run it on
      // DAG-constrained workloads (that also covers nonrecursive cases).
      // Recursive programs with aggregates are excluded: aggregates over a
      // recursive multiset (derivation-weighted COUNT/SUM) legitimately
      // differ from the set-semantics oracle.
      if (!(pc.recursive && pc.has_aggregates)) {
        params.push_back({c, Strategy::kRecursiveCounting,
                          Semantics::kDuplicate, seed, /*dag_only=*/true});
      }
    }
  }
  return params;
}

constexpr int kNumNodes = 16;
constexpr int kInitialEdges = 40;
constexpr int kRounds = 6;
constexpr int kBatch = 4;

/// Fills `rel` with a random extent for the given arity. With `dag_only`,
/// edges always point from a smaller to a larger node id (acyclic).
void FillRandom(Relation* rel, int arity, bool dag_only, std::mt19937_64* rng) {
  std::uniform_int_distribution<int> node(0, kNumNodes - 1);
  std::uniform_int_distribution<int> cost(1, 15);
  int target = arity == 3 ? kInitialEdges / 2 : kInitialEdges;
  for (int i = 0; i < target; ++i) {
    int a = node(*rng), b = node(*rng);
    if (a == b) continue;
    if (dag_only && a > b) std::swap(a, b);
    // Keep the base a set (count 1): multiplicity handling is covered by
    // dedicated counting tests, and the recursive-counting sweeps compare
    // against a set-semantics oracle.
    Tuple t = arity == 2 ? Tup(a, b) : Tup(a, b, cost(*rng));
    if (!rel->Contains(t)) rel->Add(t, 1);
  }
}

/// A random batch of deletions of existing tuples and insertions of fresh
/// random tuples for every base relation.
ChangeSet RandomBatch(const PropertyCase& pc, const Maintainer& m,
                      bool dag_only, std::mt19937_64* rng) {
  ChangeSet batch;
  std::uniform_int_distribution<int> node(0, kNumNodes - 1);
  std::uniform_int_distribution<int> cost(1, 15);
  std::uniform_int_distribution<int> howmany(0, kBatch);
  for (const auto& [name, arity] : pc.base) {
    const Relation& current = *m.GetRelation(name).value();
    for (const Tuple& t : SampleTuples(current, howmany(*rng), (*rng)())) {
      batch.Delete(name, t);
    }
    int inserts = howmany(*rng);
    for (int i = 0; i < inserts; ++i) {
      int a = node(*rng), b = node(*rng);
      if (a == b) continue;
      if (dag_only && a > b) std::swap(a, b);
      Tuple t = arity == 2 ? Tup(a, b) : Tup(a, b, cost(*rng));
      if (current.Contains(t) || batch.Delta(name).Contains(t)) continue;
      batch.Insert(name, t);
    }
  }
  return batch;
}

class MaintainerPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(MaintainerPropertyTest, AgreesWithRecomputeOracle) {
  const PropertyParam& param = GetParam();
  const PropertyCase& pc = kCases[param.case_index];
  std::mt19937_64 rng(param.seed * 7919 + param.case_index);

  Database db;
  for (const auto& [name, arity] : pc.base) {
    db.CreateRelation(name, arity).CheckOK();
    FillRandom(&db.mutable_relation(name), arity, param.dag_only, &rng);
  }

  // Recursive counting keeps full derivation counts even for recursive
  // programs, where the recompute oracle cannot (duplicate semantics is
  // undefined there): verify it at the set level against a set oracle.
  const Semantics oracle_semantics =
      param.strategy == Strategy::kRecursiveCounting && pc.recursive
          ? Semantics::kSet
          : param.semantics;
  const bool count_exact = oracle_semantics == Semantics::kDuplicate;

  auto subject = ViewManager::CreateFromText(
      pc.program,
      testing_util::ManagerOptions(param.strategy, param.semantics));
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  auto oracle = ViewManager::CreateFromText(
      pc.program,
      testing_util::ManagerOptions(Strategy::kRecompute, oracle_semantics));
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  IVM_ASSERT_OK((*subject)->Initialize(db));
  IVM_ASSERT_OK((*oracle)->Initialize(db));

  for (int round = 0; round < kRounds; ++round) {
    ChangeSet batch =
        RandomBatch(pc, (*subject)->maintainer(), param.dag_only, &rng);
    auto subject_out = (*subject)->Apply(batch);
    ASSERT_TRUE(subject_out.ok())
        << "round " << round << ": " << subject_out.status().ToString();
    auto oracle_out = (*oracle)->Apply(batch);
    ASSERT_TRUE(oracle_out.ok()) << oracle_out.status().ToString();

    const Program& program = (*subject)->program();
    const bool compare_deltas =
        param.semantics == oracle_semantics;
    for (PredicateId pred : program.DerivedPredicates()) {
      const std::string& name = program.predicate(pred).name;
      const Relation& actual = *(*subject)->snapshot().Get(name).value();
      const Relation& expected = *(*oracle)->snapshot().Get(name).value();
      if (count_exact) {
        // Full multiplicities must match exactly (Theorem 4.1).
        ASSERT_EQ(actual.ToString(), expected.ToString())
            << "view " << name << " diverged at round " << round;
      } else {
        ASSERT_TRUE(actual.SameSet(expected))
            << "view " << name << " diverged at round " << round
            << "\nactual:   " << actual.ToString()
            << "\nexpected: " << expected.ToString();
      }
      if (compare_deltas && param.strategy != Strategy::kRecursiveCounting) {
        // Reported deltas must match the oracle's diff (PF may fragment a
        // change into delete+reinsert pairs that cancel, so compare nets).
        Relation actual_delta = subject_out->Delta(name);
        Relation expected_delta = oracle_out->Delta(name);
        ASSERT_EQ(actual_delta.ToString(), expected_delta.ToString())
            << "delta of " << name << " diverged at round " << round;
      }
    }
    // Invariant (Lemma 4.1): stored views never go negative.
    for (PredicateId pred : program.DerivedPredicates()) {
      const std::string& name = program.predicate(pred).name;
      EXPECT_FALSE((*subject)->snapshot().Get(name).value()->HasNegativeCounts());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaintainerPropertyTest, ::testing::ValuesIn(MakeParams()),
    [](const ::testing::TestParamInfo<PropertyParam>& param_info) {
      return param_info.param.Name();
    });

}  // namespace
}  // namespace ivm
