// Executable transcriptions of every worked example in the paper
// "Maintaining Views Incrementally" (Gupta, Mumick, Subrahmanian, SIGMOD'93).
// Each test quotes the example it reproduces; expected values are the
// paper's own numbers. See DESIGN.md §4 (experiments X1-X5).

#include <gtest/gtest.h>

#include "core/counting.h"
#include "core/delta_rules.h"
#include "core/dred.h"
#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

// --------------------------------------------------------------------------
// Example 1.1: CREATE VIEW hop(S,D) AS SELECT r1.S, r2.D FROM link r1,
// link r2 WHERE r1.D = r2.S, over link = {(a,b),(b,c),(b,e),(a,d),(d,c)}.
// --------------------------------------------------------------------------
constexpr const char* kHopProgram =
    "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).";
constexpr const char* kExample11Links =
    "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).";

TEST(PaperExample11, HopEvaluatesWithDerivationCounts) {
  // "hop(a,e) would have a count of 1 and hop(a,c) would have a count of 2."
  auto m = CountingMaintainer::Create(MustParseProgram(kHopProgram),
                                      Semantics::kDuplicate).value();
  Database db;
  testing_util::MustLoadFacts(&db, kExample11Links);
  m->Initialize(db).CheckOK();
  const Relation& hop = *m->GetRelation("hop").value();
  EXPECT_EQ(hop.Count(Tup("a", "c")), 2);
  EXPECT_EQ(hop.Count(Tup("a", "e")), 1);
  EXPECT_EQ(hop.size(), 2u);
}

TEST(PaperExample11, CountingDeletesOnlyHopAE) {
  // "The algorithm uses the stored counts to infer that hop(a,c) has one
  //  remaining derivation and therefore only deletes hop(a,e)."
  auto m = CountingMaintainer::Create(MustParseProgram(kHopProgram),
                                      Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(&db, kExample11Links);
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").ToString(), "{(\"a\", \"e\"):-1}");
  EXPECT_EQ(m->GetRelation("hop").value()->ToString(), "{(\"a\", \"c\")}");
}

TEST(PaperExample11, DRedOverDeletesThenRederivesHopAC) {
  // "The DRed algorithm first deletes tuples hop(a,c) and hop(a,e) ...
  //  hop(a,c) is rederived and reinserted in the second step."
  auto m = DRedMaintainer::Create(MustParseProgram(kHopProgram)).value();
  Database db;
  testing_util::MustLoadFacts(&db, kExample11Links);
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  // Net effect identical to counting: only hop(a,e) is reported deleted.
  EXPECT_EQ(out.Delta("hop").ToString(), "{(\"a\", \"e\"):-1}");
  EXPECT_EQ(m->GetRelation("hop").value()->ToString(), "{(\"a\", \"c\")}");
}

// --------------------------------------------------------------------------
// Example 4.1: the delta rules for hop.
// --------------------------------------------------------------------------
TEST(PaperExample41, DeltaRulesD1AndD2) {
  Program p = MustParseProgram(kHopProgram);
  std::vector<DeltaRule> drs = CompileDeltaRules(p, 0);
  ASSERT_EQ(drs.size(), 2u);
  EXPECT_EQ(DeltaRuleToString(p, drs[0]),
            "Δhop(X, Y) :- Δ(link(X, Z)) & link(Z, Y).");
  EXPECT_EQ(DeltaRuleToString(p, drs[1]),
            "Δhop(X, Y) :- link(X, Z)^new & Δ(link(Z, Y)).");
}

// --------------------------------------------------------------------------
// Example 4.2: two-stratum propagation with duplicate counts.
// link = {ab, ad, dc, bc, ch, fg}; Δ(link) = {ab -1, df +1, af +1}.
// --------------------------------------------------------------------------
constexpr const char* kTriHopProgram =
    "base link(S, D).\n"
    "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
    "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).";
constexpr const char* kExample42Links =
    "link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).";

TEST(PaperExample42, InitialMaterializations) {
  // "hop = {ac 2, dh, bh}. tri_hop = {ah 2}."
  auto m = CountingMaintainer::Create(MustParseProgram(kTriHopProgram),
                                      Semantics::kDuplicate).value();
  Database db;
  testing_util::MustLoadFacts(&db, kExample42Links);
  m->Initialize(db).CheckOK();
  EXPECT_EQ(m->GetRelation("hop").value()->ToString(),
            "{(\"a\", \"c\"):2, (\"b\", \"h\"), (\"d\", \"h\")}");
  EXPECT_EQ(m->GetRelation("tri_hop").value()->ToString(),
            "{(\"a\", \"h\"):2}");
}

TEST(PaperExample42, DeltaPropagationWithCounts) {
  auto m = CountingMaintainer::Create(MustParseProgram(kTriHopProgram),
                                      Semantics::kDuplicate).value();
  Database db;
  testing_util::MustLoadFacts(&db, kExample42Links);
  m->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  changes.Insert("link", Tup("d", "f"));
  changes.Insert("link", Tup("a", "f"));
  ChangeSet out = m->Apply(changes).value();

  // "Apply rule Δ1(v1): Δ(hop) = {ac -1, ag, dg}. Apply rule Δ2(v1):
  //  Δ(hop) = {af}."  Combined: {ac -1, af, ag, dg}.
  EXPECT_EQ(out.Delta("hop").ToString(),
            "{(\"a\", \"c\"):-1, (\"a\", \"f\"), (\"a\", \"g\"), (\"d\", \"g\")}");
  // "Combining the above changes, we get: hop = {ac, af, ag, dg, dh, bh}."
  EXPECT_EQ(m->GetRelation("hop").value()->ToString(),
            "{(\"a\", \"c\"), (\"a\", \"f\"), (\"a\", \"g\"), (\"b\", \"h\"), "
            "(\"d\", \"g\"), (\"d\", \"h\")}");
  // "Apply rule Δ1(v2): Δ(tri_hop) = {ah -1, ag}. Apply rule Δ2(v2): {}."
  EXPECT_EQ(out.Delta("tri_hop").ToString(),
            "{(\"a\", \"g\"), (\"a\", \"h\"):-1}");
  // "Combining the above changes, we get: tri_hop = {ah, ag}."
  EXPECT_EQ(m->GetRelation("tri_hop").value()->ToString(),
            "{(\"a\", \"g\"), (\"a\", \"h\")}");
}

// --------------------------------------------------------------------------
// Example 5.1: the boxed set-semantics optimization.
// --------------------------------------------------------------------------
TEST(PaperExample51, SetOptimizationSuppressesCountOnlyCascade) {
  auto m = CountingMaintainer::Create(MustParseProgram(kTriHopProgram),
                                      Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(&db, kExample42Links);
  m->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  changes.Insert("link", Tup("d", "f"));
  changes.Insert("link", Tup("a", "f"));
  ChangeSet out = m->Apply(changes).value();

  // "Δ(hop) = set(hop_new) - set(hop) = {af, ag, dg}. Note that unlike
  //  Example 4.2, the tuple hop(ac -1) does not appear in Δ(hop) and is not
  //  cascaded to relation tri_hop."
  EXPECT_EQ(out.Delta("hop").ToString(),
            "{(\"a\", \"f\"), (\"a\", \"g\"), (\"d\", \"g\")}");
  // "Consequently the tuple (ah -1) will not be derived for Δ(tri_hop)."
  EXPECT_EQ(out.Delta("tri_hop").ToString(), "{(\"a\", \"g\")}");
  EXPECT_TRUE(m->GetRelation("tri_hop").value()->Contains(Tup("a", "h")));
}

// --------------------------------------------------------------------------
// Example 6.1: negation — only_tri_hop.
// --------------------------------------------------------------------------
TEST(PaperExample61, OnlyTriHopWithNegation) {
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).\n"
      "only_tri_hop(X, Y) :- tri_hop(X, Y) & !hop(X, Y).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kDuplicate).value();
  Database db;
  testing_util::MustLoadFacts(
      &db,
      "link(a,b). link(a,e). link(a,f). link(a,g). link(b,c). link(c,d). "
      "link(c,k). link(e,d). link(f,d). link(g,h). link(h,k).");
  m->Initialize(db).CheckOK();

  // "The relations hop and tri_hop are {ac, ad 2, ah, bd, bk, gk} and
  //  {ad, ak 2} respectively. The relation only_tri_hop = {ak 2}."
  const Relation& hop = *m->GetRelation("hop").value();
  EXPECT_EQ(hop.Count(Tup("a", "d")), 2);
  EXPECT_EQ(hop.size(), 6u);
  const Relation& tri = *m->GetRelation("tri_hop").value();
  EXPECT_EQ(tri.Count(Tup("a", "d")), 1);
  EXPECT_EQ(tri.Count(Tup("a", "k")), 2);
  EXPECT_EQ(tri.size(), 2u);
  EXPECT_EQ(m->GetRelation("only_tri_hop").value()->ToString(),
            "{(\"a\", \"k\"):2}");
  // "Tuple (a,d) does not appear in only_tri_hop because hop(a,d) is true."
  EXPECT_FALSE(m->GetRelation("only_tri_hop").value()->Contains(Tup("a", "d")));
}

// --------------------------------------------------------------------------
// Example 6.2: aggregation — min_cost_hop.
// --------------------------------------------------------------------------
TEST(PaperExample62, MinCostHop) {
  Program p = MustParseProgram(
      "base link(S, D, C).\n"
      "hop(S, D, C1 + C2) :- link(S, I, C1) & link(I, D, C2).\n"
      "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a, b, 2). link(b, c, 3). link(a, d, 1). link(d, c, 10).");
  m->Initialize(db).CheckOK();
  // Two a~>c hops with costs 5 and 11: min is 5.
  EXPECT_TRUE(m->GetRelation("min_cost_hop").value()->Contains(Tup("a", "c", 5)));

  // "inserting the tuple hop(a,b,10) can only change the min_cost_hop tuple
  //  from a to b. The change actually occurs if the previous minimum cost
  //  from a to b had a cost more than 10." — exercise both directions.
  ChangeSet cheap;
  cheap.Insert("link", Tup("a", "x", 1));
  cheap.Insert("link", Tup("x", "c", 1));
  ChangeSet out = m->Apply(cheap).value();
  EXPECT_EQ(out.Delta("min_cost_hop").Count(Tup("a", "c", 5)), -1);
  EXPECT_EQ(out.Delta("min_cost_hop").Count(Tup("a", "c", 2)), 1);

  ChangeSet expensive;
  expensive.Insert("link", Tup("a", "y", 50));
  expensive.Insert("link", Tup("y", "c", 50));
  ChangeSet out2 = m->Apply(expensive).value();
  EXPECT_FALSE(out2.Has("min_cost_hop"));  // min unchanged: no cascade
}

}  // namespace
}  // namespace ivm
