// The fault-injection registry. The registry itself is always compiled (only
// the IVM_FAILPOINT macro is gated on -DIVM_FAILPOINTS), so its arming /
// counting semantics are testable in every build by calling Check() directly.

#include "txn/failpoint.h"

#include <set>

#include <gtest/gtest.h>

namespace ivm {
namespace {

class FailpointRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    FailpointRegistry::Instance().ResetHitCounts();
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  FailpointRegistry& reg() { return FailpointRegistry::Instance(); }
};

TEST_F(FailpointRegistryTest, UnarmedSiteAlwaysPasses) {
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(reg().Check("test.unarmed").ok());
  }
  EXPECT_EQ(reg().HitCount("test.unarmed"), 5u);
}

TEST_F(FailpointRegistryTest, ArmOnNthHitFiresExactlyOnce) {
  reg().ArmOnNthHit("test.nth", 3);
  EXPECT_TRUE(reg().Check("test.nth").ok());
  EXPECT_TRUE(reg().Check("test.nth").ok());
  EXPECT_FALSE(reg().Check("test.nth").ok());
  // One-shot: after firing, the site passes again.
  EXPECT_TRUE(reg().Check("test.nth").ok());
  EXPECT_TRUE(reg().Check("test.nth").ok());
}

TEST_F(FailpointRegistryTest, ArmOnNthHitCountsFromArmingTime) {
  // Executions before arming must not count toward the nth hit.
  EXPECT_TRUE(reg().Check("test.rearm").ok());
  EXPECT_TRUE(reg().Check("test.rearm").ok());
  reg().ArmOnNthHit("test.rearm", 2);
  EXPECT_TRUE(reg().Check("test.rearm").ok());
  EXPECT_FALSE(reg().Check("test.rearm").ok());
}

TEST_F(FailpointRegistryTest, ArmAlwaysFailsEveryTime) {
  reg().ArmAlways("test.always");
  for (int i = 0; i < 4; ++i) {
    Status s = reg().Check("test.always");
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("test.always"), std::string::npos)
        << "failpoint error should name the site: " << s.ToString();
  }
  reg().Disarm("test.always");
  EXPECT_TRUE(reg().Check("test.always").ok());
}

TEST_F(FailpointRegistryTest, ProbabilityZeroAndOneAreDegenerate) {
  reg().ArmWithProbability("test.p0", 0.0, /*seed=*/1);
  reg().ArmWithProbability("test.p1", 1.0, /*seed=*/1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(reg().Check("test.p0").ok());
    EXPECT_FALSE(reg().Check("test.p1").ok());
  }
}

TEST_F(FailpointRegistryTest, ProbabilityIsDeterministicPerSeed) {
  auto trace = [&](uint64_t seed) {
    reg().ArmWithProbability("test.prob", 0.5, seed);
    std::string t;
    for (int i = 0; i < 64; ++i) {
      t += reg().Check("test.prob").ok() ? '.' : 'X';
    }
    reg().Disarm("test.prob");
    return t;
  };
  const std::string a = trace(42);
  const std::string b = trace(42);
  const std::string c = trace(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(c, a);  // different seed, different trace (overwhelmingly likely)
  // p=0.5 over 64 draws should fire at least once and pass at least once.
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(FailpointRegistryTest, DisarmAllClearsEverything) {
  reg().ArmAlways("test.a");
  reg().ArmAlways("test.b");
  reg().DisarmAll();
  EXPECT_TRUE(reg().Check("test.a").ok());
  EXPECT_TRUE(reg().Check("test.b").ok());
}

TEST_F(FailpointRegistryTest, HitCountsTrackAndReset) {
  reg().Check("test.hits");
  reg().Check("test.hits");
  reg().Check("test.other");
  EXPECT_EQ(reg().HitCount("test.hits"), 2u);
  EXPECT_EQ(reg().HitCount("test.other"), 1u);
  EXPECT_EQ(reg().HitCount("test.never"), 0u);
  reg().ResetHitCounts();
  EXPECT_EQ(reg().HitCount("test.hits"), 0u);
}

TEST_F(FailpointRegistryTest, CatalogueIsNonEmptyAndUnique) {
  EXPECT_GE(kFailpointCatalogue.size(), 15u);
  std::set<std::string> unique(kFailpointCatalogue.begin(),
                               kFailpointCatalogue.end());
  EXPECT_EQ(unique.size(), kFailpointCatalogue.size());
  for (const auto& name : unique) {
    EXPECT_FALSE(name.empty());
  }
}

TEST_F(FailpointRegistryTest, CompiledInMatchesBuildFlag) {
#if defined(IVM_FAILPOINTS)
  EXPECT_TRUE(FailpointRegistry::CompiledIn());
#else
  EXPECT_FALSE(FailpointRegistry::CompiledIn());
#endif
}

}  // namespace
}  // namespace ivm
