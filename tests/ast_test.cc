#include "datalog/ast.h"

#include <gtest/gtest.h>

namespace ivm {
namespace {

TEST(TermTest, Constructors) {
  Term v = Term::Var("X");
  EXPECT_TRUE(v.IsVariable());
  EXPECT_EQ(v.var_name(), "X");
  EXPECT_EQ(v.var(), kUnassignedVar);

  Term c = Term::Const(Value::Int(3));
  EXPECT_TRUE(c.IsConstant());
  EXPECT_EQ(c.constant(), Value::Int(3));

  Term a = Term::Arith(ArithOp::kAdd, Term::Var("X"), Term::Const(Value::Int(1)));
  EXPECT_TRUE(a.IsArith());
  EXPECT_TRUE(a.lhs().IsVariable());
  EXPECT_TRUE(a.rhs().IsConstant());
}

TEST(TermTest, ToString) {
  EXPECT_EQ(Term::Var("Foo").ToString(), "Foo");
  EXPECT_EQ(Term::Const(Value::Str("s")).ToString(), "\"s\"");
  Term nested = Term::Arith(
      ArithOp::kMul, Term::Var("X"),
      Term::Arith(ArithOp::kSub, Term::Var("Y"), Term::Const(Value::Int(2))));
  EXPECT_EQ(nested.ToString(), "(X * (Y - 2))");
}

TEST(TermTest, CollectVarNames) {
  Term t = Term::Arith(ArithOp::kAdd, Term::Var("A"),
                       Term::Arith(ArithOp::kDiv, Term::Var("B"), Term::Var("A")));
  std::vector<std::string> names;
  t.CollectVarNames(&names);
  EXPECT_EQ(names, (std::vector<std::string>{"A", "B", "A"}));
}

TEST(AtomTest, ToString) {
  Atom a;
  a.predicate = "link";
  a.terms = {Term::Var("X"), Term::Const(Value::Str("b"))};
  EXPECT_EQ(a.ToString(), "link(X, \"b\")");
  EXPECT_EQ(a.arity(), 2u);
  Atom empty;
  empty.predicate = "unit";
  EXPECT_EQ(empty.ToString(), "unit()");
}

TEST(LiteralTest, Factories) {
  Atom a;
  a.predicate = "p";
  a.terms = {Term::Var("X")};
  EXPECT_EQ(Literal::Positive(a).kind, Literal::Kind::kPositive);
  EXPECT_EQ(Literal::Negated(a).kind, Literal::Kind::kNegated);
  EXPECT_EQ(Literal::Negated(a).ToString(), "!p(X)");
  Literal cmp = Literal::Comparison(ComparisonOp::kLe, Term::Var("X"),
                                    Term::Const(Value::Int(5)));
  EXPECT_EQ(cmp.ToString(), "X <= 5");
  EXPECT_TRUE(Literal::Positive(a).IsAtomBased());
  EXPECT_FALSE(cmp.IsAtomBased());
}

TEST(LiteralTest, AggregateToString) {
  Atom a;
  a.predicate = "hop";
  a.terms = {Term::Var("S"), Term::Var("D"), Term::Var("C")};
  Literal agg = Literal::Aggregate(a, {Term::Var("S"), Term::Var("D")},
                                   Term::Var("M"), AggregateFunc::kMin,
                                   Term::Var("C"));
  EXPECT_EQ(agg.ToString(), "groupby(hop(S, D, C), [S, D], M = min(C))");
  EXPECT_TRUE(agg.IsAtomBased());
}

TEST(RuleTest, ToString) {
  Rule r;
  r.head.predicate = "hop";
  r.head.terms = {Term::Var("X"), Term::Var("Y")};
  Atom l1;
  l1.predicate = "link";
  l1.terms = {Term::Var("X"), Term::Var("Z")};
  Atom l2;
  l2.predicate = "link";
  l2.terms = {Term::Var("Z"), Term::Var("Y")};
  r.body.push_back(Literal::Positive(l1));
  r.body.push_back(Literal::Positive(l2));
  EXPECT_EQ(r.ToString(), "hop(X, Y) :- link(X, Z) & link(Z, Y).");
}

TEST(NamesTest, OperatorAndFunctionNames) {
  EXPECT_STREQ(ComparisonOpName(ComparisonOp::kEq), "=");
  EXPECT_STREQ(ComparisonOpName(ComparisonOp::kNe), "!=");
  EXPECT_STREQ(ComparisonOpName(ComparisonOp::kGe), ">=");
  EXPECT_STREQ(AggregateFuncName(AggregateFunc::kSum), "sum");
  EXPECT_STREQ(AggregateFuncName(AggregateFunc::kAvg), "avg");
}

TEST(TermTest, SharedArithChildrenSurviveCopies) {
  Term a = Term::Arith(ArithOp::kAdd, Term::Var("X"), Term::Var("Y"));
  Term b = a;  // copies share children by design (documented in ast.h)
  EXPECT_EQ(b.lhs().var_name(), "X");
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace ivm
