#include "eval/rule_eval.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

/// Evaluates rule 0 of `program_text` against the relations in `db`.
Relation EvalRule0(const std::string& program_text, Database* db,
                   bool multiset = true, JoinStats* stats = nullptr) {
  Program p = MustParseProgram(program_text);
  MapResolver resolver;
  for (PredicateId pred : p.BasePredicates()) {
    const auto& info = p.predicate(pred);
    if (!db->Has(info.name)) db->CreateRelation(info.name, info.arity).CheckOK();
    resolver.Put(pred, &db->relation(info.name));
  }
  Relation out("out", p.rule(0).head.terms.size());
  Status s = EvaluateRuleOnce(p, 0, resolver, multiset, &out, stats);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(RuleEvalTest, SimpleJoinCountsDerivations) {
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  Relation hop =
      EvalRule0("base link(S,D). hop(X,Y) :- link(X,Z) & link(Z,Y).", &db);
  // Example 1.1: hop(a,c) has two derivations, hop(a,e) one.
  EXPECT_EQ(hop.Count(Tup("a", "c")), 2);
  EXPECT_EQ(hop.Count(Tup("a", "e")), 1);
  EXPECT_EQ(hop.size(), 2u);
}

TEST(RuleEvalTest, CountsMultiply) {
  Database db;
  db.CreateRelation("r", 1).CheckOK();
  db.CreateRelation("s", 1).CheckOK();
  db.mutable_relation("r").Add(Tup(1), 2);
  db.mutable_relation("s").Add(Tup(1), 3);
  Relation out = EvalRule0("base r(X). base s(X). p(X) :- r(X) & s(X).", &db);
  EXPECT_EQ(out.Count(Tup(1)), 6);
}

TEST(RuleEvalTest, NegativeCountsPropagateSign) {
  Database db;
  db.CreateRelation("r", 1).CheckOK();
  db.CreateRelation("s", 1).CheckOK();
  db.mutable_relation("r").Add(Tup(1), -1);
  db.mutable_relation("s").Add(Tup(1), 4);
  Relation out = EvalRule0("base r(X). base s(X). p(X) :- r(X) & s(X).", &db);
  EXPECT_EQ(out.Count(Tup(1)), -4);
}

TEST(RuleEvalTest, ProjectionAccumulatesCounts) {
  Database db;
  testing_util::MustLoadFacts(&db, "e(a, x). e(a, y). e(b, z).");
  Relation out = EvalRule0("base e(X, Y). src(X) :- e(X, Y).", &db);
  EXPECT_EQ(out.Count(Tup("a")), 2);
  EXPECT_EQ(out.Count(Tup("b")), 1);
}

TEST(RuleEvalTest, ConstantsInPatternsFilter) {
  Database db;
  testing_util::MustLoadFacts(&db, "e(a, x). e(b, x). e(a, y).");
  Relation out = EvalRule0("base e(X, Y). p(Y) :- e(a, Y).", &db);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Tup("x")));
  EXPECT_TRUE(out.Contains(Tup("y")));
}

TEST(RuleEvalTest, RepeatedVariableInAtom) {
  Database db;
  testing_util::MustLoadFacts(&db, "e(a, a). e(a, b). e(c, c).");
  Relation out = EvalRule0("base e(X, Y). loop(X) :- e(X, X).", &db);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Tup("a")));
  EXPECT_TRUE(out.Contains(Tup("c")));
}

TEST(RuleEvalTest, NegationChecksAbsence) {
  Database db;
  testing_util::MustLoadFacts(&db, "e(a). e(b). f(b).");
  Relation out = EvalRule0("base e(X). base f(X). p(X) :- e(X), !f(X).", &db);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tup("a")));
}

TEST(RuleEvalTest, NegationContributesCountOne) {
  // Even if e(a) has count 5, ¬f filters with factor 1 (Example 6.1).
  Database db;
  db.CreateRelation("e", 1).CheckOK();
  db.CreateRelation("f", 1).CheckOK();
  db.mutable_relation("e").Add(Tup("a"), 5);
  Relation out = EvalRule0("base e(X). base f(X). p(X) :- e(X), !f(X).", &db);
  EXPECT_EQ(out.Count(Tup("a")), 5);  // 5 (from e) × 1 (from ¬f)
}

TEST(RuleEvalTest, ComparisonsFilter) {
  Database db;
  testing_util::MustLoadFacts(&db, "n(1). n(5). n(10).");
  Relation out = EvalRule0("base n(X). big(X) :- n(X), X > 4.", &db);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(out.Contains(Tup(1)));
}

TEST(RuleEvalTest, EqualityBindsNewVariable) {
  Database db;
  testing_util::MustLoadFacts(&db, "n(3). n(4).");
  Relation out = EvalRule0("base n(X). p(X, Y) :- n(X), Y = X * 2.", &db);
  EXPECT_TRUE(out.Contains(Tup(3, 6)));
  EXPECT_TRUE(out.Contains(Tup(4, 8)));
}

TEST(RuleEvalTest, ArithmeticInHead) {
  Database db;
  testing_util::MustLoadFacts(&db, "link(a, b, 3). link(b, c, 4).");
  Relation out = EvalRule0(
      "base link(S, D, C). hop(S, D, C1 + C2) :- link(S, I, C1) & link(I, D, C2).",
      &db);
  EXPECT_TRUE(out.Contains(Tup("a", "c", 7)));
}

TEST(RuleEvalTest, ArithmeticInBodyPatternChecksValue) {
  Database db;
  testing_util::MustLoadFacts(&db, "n(2). n(3). pair(2, 3). pair(2, 4).");
  // q matches only when second column equals X+1.
  Relation out = EvalRule0("base n(X). base pair(X, Y). p(X) :- n(X), pair(X, X + 1).", &db);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tup(2)));
}

TEST(RuleEvalTest, CrossArithmeticDependency) {
  // a's arithmetic needs b's variable and vice versa: deferred checks.
  Database db;
  testing_util::MustLoadFacts(&db, "a(1, 3). a(2, 9). b(2, 2). b(5, 3).");
  Relation out = EvalRule0(
      "base a(X, Y). base b(Y2, X2). p(X, Y) :- a(X, Y + 1) & b(Y, X + 1).",
      &db);
  // Need a(X, Y+1) and b(Y, X+1): try X=1: a(1,3) → Y+1=3 → Y=2?? — Y is not
  // invertible, so the only satisfying assignments come from b: b(2,2) gives
  // Y=2, X+1=2 → X=1; check a(1, 3) with Y+1=3 ✓.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tup(1, 2)));
}

TEST(RuleEvalTest, EmptyRelationShortCircuits) {
  Database db;
  db.CreateRelation("e", 1).CheckOK();
  db.CreateRelation("f", 1).CheckOK();
  db.mutable_relation("f").Add(Tup(1), 1);
  JoinStats stats;
  Relation out =
      EvalRule0("base e(X). base f(X). p(X) :- f(X), e(X).", &db, true, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.tuples_matched, 0u);
}

TEST(RuleEvalTest, IndexedJoinTouchesFewTuples) {
  Database db;
  db.CreateRelation("e", 2).CheckOK();
  Relation& e = db.mutable_relation("e");
  for (int i = 0; i < 1000; ++i) e.Add(Tup(i, i + 1), 1);
  JoinStats stats;
  Relation out = EvalRule0(
      "base e(X, Y). p(X, Z) :- e(X, Y), e(Y, Z), X = 10.", &db, true, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tup(10, 12)));
  // With index joins this should touch a handful of tuples, not ~10^6.
  EXPECT_LT(stats.tuples_matched, 100u);
}

TEST(RuleEvalTest, OverlayActsAsUPlus) {
  // Scanning base ⊎ overlay must see inserted tuples and skip deleted ones.
  Database db;
  testing_util::MustLoadFacts(&db, "e(a). e(b).");
  Relation delta("Δe", 1);
  delta.Add(Tup("b"), -1);  // delete b
  delta.Add(Tup("c"), 1);   // insert c

  Program p = MustParseProgram("base e(X). p(X) :- e(X).");
  PreparedRule prepared;
  prepared.head = &p.rule(0).head;
  prepared.num_vars = p.num_vars(0);
  PreparedSubgoal sg =
      PreparedSubgoal::Scan(&db.relation("e"), p.rule(0).body[0].atom.terms);
  sg.overlay = &delta;
  prepared.subgoals.push_back(sg);
  Relation out("out", 1);
  IVM_EXPECT_OK(EvaluateJoin(prepared, &out));
  EXPECT_TRUE(out.Contains(Tup("a")));
  EXPECT_FALSE(out.Contains(Tup("b")));
  EXPECT_TRUE(out.Contains(Tup("c")));
}

TEST(RuleEvalTest, CountsAsOneClampsMultiplicities) {
  Database db;
  db.CreateRelation("e", 1).CheckOK();
  db.mutable_relation("e").Add(Tup("a"), 7);
  Program p = MustParseProgram("base e(X). p(X) :- e(X).");
  PreparedRule prepared;
  prepared.head = &p.rule(0).head;
  prepared.num_vars = p.num_vars(0);
  PreparedSubgoal sg =
      PreparedSubgoal::Scan(&db.relation("e"), p.rule(0).body[0].atom.terms);
  sg.counts_as_one = true;
  prepared.subgoals.push_back(sg);
  Relation out("out", 1);
  IVM_EXPECT_OK(EvaluateJoin(prepared, &out));
  EXPECT_EQ(out.Count(Tup("a")), 1);
}

TEST(RuleEvalTest, NegCheckWithOverlaySeesNewState) {
  Database db;
  testing_util::MustLoadFacts(&db, "e(a). e(b). f(a).");
  Relation delta_f("Δf", 1);
  delta_f.Add(Tup("a"), -1);
  delta_f.Add(Tup("b"), 1);
  Program p = MustParseProgram("base e(X). base f(X). p(X) :- e(X), !f(X).");
  PreparedRule prepared;
  prepared.head = &p.rule(0).head;
  prepared.num_vars = p.num_vars(0);
  prepared.subgoals.push_back(PreparedSubgoal::Scan(
      &db.relation("e"), p.rule(0).body[0].atom.terms));
  PreparedSubgoal neg = PreparedSubgoal::NegCheck(
      &db.relation("f"), p.rule(0).body[1].atom.terms);
  neg.overlay = &delta_f;
  prepared.subgoals.push_back(neg);
  Relation out("out", 1);
  IVM_EXPECT_OK(EvaluateJoin(prepared, &out));
  // New f = {b}: ¬f(a) true, ¬f(b) false.
  EXPECT_TRUE(out.Contains(Tup("a")));
  EXPECT_FALSE(out.Contains(Tup("b")));
}

TEST(RuleEvalTest, StartSubgoalIsRespected) {
  // Planner must start at the delta subgoal even if another scan looks
  // cheaper.
  Database db;
  db.CreateRelation("big", 2).CheckOK();
  for (int i = 0; i < 100; ++i) db.mutable_relation("big").Add(Tup(i, i), 1);
  Relation delta("Δ", 2);
  delta.Add(Tup(5, 5), 1);
  Program p = MustParseProgram("base big(X, Y). p(X) :- big(X, Y) & big(Y, X).");
  PreparedRule prepared;
  prepared.head = &p.rule(0).head;
  prepared.num_vars = p.num_vars(0);
  prepared.subgoals.push_back(
      PreparedSubgoal::Scan(&delta, p.rule(0).body[0].atom.terms));
  prepared.subgoals.push_back(PreparedSubgoal::Scan(
      &db.relation("big"), p.rule(0).body[1].atom.terms));
  prepared.start_subgoal = 0;
  JoinStats stats;
  Relation out("out", 1);
  IVM_EXPECT_OK(EvaluateJoin(prepared, &out, &stats));
  EXPECT_EQ(out.Count(Tup(5)), 1);
  EXPECT_LT(stats.tuples_matched, 10u);
}

}  // namespace
}  // namespace ivm
