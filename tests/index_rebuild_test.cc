// Regression test for redundant index rebuilds: steady-state maintenance
// must not rebuild (or even re-touch) indexes of relations the ChangeSet
// does not name. Earlier versions invalidated every cached index on Apply,
// so an update stream over relation `a` paid O(|b|) rebuilds for `b`'s
// untouched indexes on every batch.

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "storage/index.h"
#include "test_util.h"

namespace ivm {
namespace {

constexpr const char* kProgram =
    "base a(X, Y). base b(X, Y).\n"
    "va(X, Z) :- a(X, Y) & a(Y, Z).\n"
    "vb(X, Z) :- b(X, Y) & b(Y, Z).\n"
    "vab(X, Z) :- a(X, Y) & b(Y, Z).\n";

class IndexRebuildTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(IndexRebuildTest, UntouchedRelationsKeepTheirIndexes) {
  auto vm = ViewManager::CreateFromText(
      kProgram, testing_util::ManagerOptions(GetParam()));
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();

  Database db;
  testing_util::MustLoadFacts(
      &db,
      "a(1, 2). a(2, 3). a(3, 4). a(4, 1).\n"
      "b(1, 2). b(2, 3). b(3, 4). b(4, 5). b(5, 6).");
  IVM_ASSERT_OK((*vm)->Initialize(db));

  // Warm-up batches: first maintenance pays whatever index builds it needs.
  // Both the insert and the delete path are exercised — DRed's rederive
  // phase runs only on deletions and builds its probe indexes on first use,
  // and those one-time builds must land here, not in the steady-state
  // measurement below. The deleted tuple a(1, 2) leaves the warm-inserted
  // a(1, 3) behind, so rederivation of the over-deleted vab tuples actually
  // reaches (and indexes) the b subgoal.
  ChangeSet warm_insert;
  warm_insert.Insert("a", Tup(1, 3));
  ASSERT_TRUE((*vm)->Apply(warm_insert).ok());
  ChangeSet warm_delete;
  warm_delete.Delete("a", Tup(1, 2));
  ASSERT_TRUE((*vm)->Apply(warm_delete).ok());

  // White-box: watch the maintainer's LIVE storage slots (not snapshot
  // extents, which are immutable copies) — this test asserts on the
  // internal version/index-rebuild counters across Applies.
  const Relation& b = *(*vm)->maintainer().GetRelation("b").value();
  const Relation& vb = *(*vm)->maintainer().GetRelation("vb").value();
  const uint64_t b_version = b.version();
  const uint64_t b_rebuilds = b.index_rebuilds();
  const uint64_t vb_version = vb.version();
  const uint64_t vb_rebuilds = vb.index_rebuilds();
  uint64_t builds_before = Index::TotalBuilds();
  uint64_t steady_batch_builds = 0;

  // A stream of identically-shaped batches naming only `a`. Neither `b` nor
  // its view `vb` may be modified or re-indexed; stored-relation indexes are
  // maintained incrementally, so the only builds a batch may pay are for its
  // own fresh delta relations — a per-batch constant that must not grow with
  // the untouched data or with time.
  for (int i = 0; i < 5; ++i) {
    ChangeSet batch;
    batch.Insert("a", Tup(10 + i, 20 + i));
    batch.Delete("a", Tup(i == 0 ? 1 : 10 + i - 1, i == 0 ? 3 : 20 + i - 1));
    auto out = (*vm)->Apply(batch);
    ASSERT_TRUE(out.ok()) << out.status().ToString();

    EXPECT_EQ(b.version(), b_version) << "batch " << i;
    EXPECT_EQ(b.index_rebuilds(), b_rebuilds) << "batch " << i;
    EXPECT_EQ(vb.version(), vb_version) << "batch " << i;
    EXPECT_EQ(vb.index_rebuilds(), vb_rebuilds) << "batch " << i;

    const uint64_t batch_builds = Index::TotalBuilds() - builds_before;
    builds_before = Index::TotalBuilds();
    if (i == 1) {
      steady_batch_builds = batch_builds;
    } else if (i > 1) {
      EXPECT_EQ(batch_builds, steady_batch_builds) << "batch " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, IndexRebuildTest,
                         ::testing::Values(Strategy::kCounting,
                                           Strategy::kDRed,
                                           Strategy::kRecompute),
                         [](const ::testing::TestParamInfo<Strategy>& info) {
                           return std::string(StrategyName(info.param));
                         });

}  // namespace
}  // namespace ivm
