#include "core/pf.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

constexpr const char* kTcProgram =
    "base edge(X, Y).\n"
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Y) :- path(X, Z) & edge(Z, Y).";

TEST(PFTest, RejectsAggregation) {
  auto m = PFMaintainer::Create(MustParseProgram(
      "base e(X, Y). c(X, N) :- groupby(e(X, Y), [X], N = count(*))."));
  EXPECT_EQ(m.status().code(), StatusCode::kUnimplemented);
}

TEST(PFTest, MaintainsTransitiveClosure) {
  auto m = PFMaintainer::Create(MustParseProgram(kTcProgram)).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "edge(0,1). edge(1,3). edge(0,2). edge(2,3). edge(3,4).");
  m->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("edge", Tup(0, 1));
  changes.Insert("edge", Tup(4, 5));
  ChangeSet out = m->Apply(changes).value();
  const Relation& path = *m->GetRelation("path").value();
  EXPECT_TRUE(path.Contains(Tup(0, 3)));  // alternative via 0->2->3
  EXPECT_FALSE(path.Contains(Tup(0, 1)));
  EXPECT_TRUE(path.Contains(Tup(0, 5)));
  EXPECT_EQ(out.Delta("path").Count(Tup(0, 1)), -1);
  EXPECT_EQ(out.Delta("path").Count(Tup(0, 5)), 1);
}

TEST(PFTest, FragmentedResultEqualsBatchResult) {
  // PF (per-tuple fragments) and DRed (one batch) must agree on the final
  // state and on the net delta.
  auto pf = PFMaintainer::Create(MustParseProgram(kTcProgram)).value();
  auto dred = DRedMaintainer::Create(MustParseProgram(kTcProgram)).value();
  Database db;
  testing_util::MustLoadFacts(
      &db,
      "edge(0,1). edge(1,2). edge(2,0). edge(2,3). edge(3,4). edge(4,2). "
      "edge(1,4).");
  pf->Initialize(db).CheckOK();
  dred->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("edge", Tup(2, 0));
  changes.Delete("edge", Tup(4, 2));
  changes.Insert("edge", Tup(0, 4));
  ChangeSet pf_out = pf->Apply(changes).value();
  ChangeSet dred_out = dred->Apply(changes).value();
  EXPECT_TRUE(pf->GetRelation("path").value()->SameSet(
      *dred->GetRelation("path").value()));
}

TEST(PFTest, PerRelationGranularity) {
  auto m = PFMaintainer::Create(MustParseProgram(kTcProgram),
                                PFMaintainer::Granularity::kPerRelation).value();
  Database db;
  testing_util::MustLoadFacts(&db, "edge(0,1). edge(1,2).");
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Insert("edge", Tup(2, 3));
  changes.Delete("edge", Tup(0, 1));
  ChangeSet out = m->Apply(changes).value();
  const Relation& path = *m->GetRelation("path").value();
  EXPECT_TRUE(path.Contains(Tup(1, 3)));
  EXPECT_FALSE(path.Contains(Tup(0, 2)));
}

}  // namespace
}  // namespace ivm
