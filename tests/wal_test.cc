// The write-ahead log: append/read round trips, the crash-recovery contract
// (a prefix of committed records survives; torn or corrupt tails are
// skipped), and log resets after checkpoints.

#include "txn/wal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

namespace fs = std::filesystem;

std::string TestPath(const std::string& name) {
  fs::path p = fs::path(::testing::TempDir()) / ("ivm_wal_" + name);
  fs::remove(p);
  return p.string();
}

std::map<std::string, Relation> SampleDeltas() {
  std::map<std::string, Relation> deltas;
  Relation link("link", 2);
  link.Add(Tup(1, 2), 1);
  link.Add(Tup(2, 3), -1);
  link.Add(Tup("a", "b"), 2);
  deltas.emplace("link", std::move(link));
  Relation cost("cost", 3);
  cost.Add(Tup(1, 2, 2.5), 1);
  deltas.emplace("cost", std::move(cost));
  return deltas;
}

TEST(WalTest, AppendAndReadAllRoundTrips) {
  const std::string path = TestPath("roundtrip.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  IVM_ASSERT_OK((*wal)->AppendChangeSet(1, SampleDeltas()));
  IVM_ASSERT_OK((*wal)->AppendAddRule(2, "hop(X, Y) :- link(X, Z) & link(Z, Y)."));
  IVM_ASSERT_OK((*wal)->AppendRemoveRule(3, 0));

  bool torn = true;
  auto records = WriteAheadLog::ReadAll(path, &torn);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_FALSE(torn);
  ASSERT_EQ(records->size(), 3u);

  EXPECT_EQ((*records)[0].epoch, 1u);
  EXPECT_EQ((*records)[0].kind, WalRecordKind::kChangeSet);
  const auto expected = SampleDeltas();
  ASSERT_EQ((*records)[0].deltas.size(), expected.size());
  EXPECT_EQ((*records)[0].deltas.at("link"), expected.at("link"));
  EXPECT_EQ((*records)[0].deltas.at("cost"), expected.at("cost"));

  EXPECT_EQ((*records)[1].epoch, 2u);
  EXPECT_EQ((*records)[1].kind, WalRecordKind::kAddRule);
  EXPECT_EQ((*records)[1].rule_text, "hop(X, Y) :- link(X, Z) & link(Z, Y).");

  EXPECT_EQ((*records)[2].epoch, 3u);
  EXPECT_EQ((*records)[2].kind, WalRecordKind::kRemoveRule);
  EXPECT_EQ((*records)[2].rule_index, 0);
}

TEST(WalTest, MissingFileReadsAsEmpty) {
  bool torn = true;
  auto records = WriteAheadLog::ReadAll(TestPath("absent.log"), &torn);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  EXPECT_FALSE(torn);
}

TEST(WalTest, TornTailIsSkipped) {
  const std::string path = TestPath("torn.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    IVM_ASSERT_OK((*wal)->AppendChangeSet(1, SampleDeltas()));
    IVM_ASSERT_OK((*wal)->AppendChangeSet(2, SampleDeltas()));
  }
  // Chop bytes off the end, simulating a crash mid-append: the first record
  // must still be readable, the truncated second one skipped.
  const auto full = fs::file_size(path);
  for (uintmax_t cut = 1; cut < 24; cut += 7) {
    fs::resize_file(path, full - cut);
    bool torn = false;
    auto records = WriteAheadLog::ReadAll(path, &torn);
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    EXPECT_TRUE(torn) << "cut=" << cut;
    ASSERT_EQ(records->size(), 1u) << "cut=" << cut;
    EXPECT_EQ((*records)[0].epoch, 1u);
  }
}

TEST(WalTest, CorruptTailFailsCrcAndIsSkipped) {
  const std::string path = TestPath("crc.log");
  uintmax_t first_record_end = 0;
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    IVM_ASSERT_OK((*wal)->AppendChangeSet(1, SampleDeltas()));
    first_record_end = fs::file_size(path);
    IVM_ASSERT_OK((*wal)->AppendChangeSet(2, SampleDeltas()));
  }
  // Flip one payload byte inside the second record.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(first_record_end) + 16);
    char c = 0;
    f.seekg(static_cast<std::streamoff>(first_record_end) + 16);
    f.get(c);
    f.seekp(static_cast<std::streamoff>(first_record_end) + 16);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  bool torn = false;
  auto records = WriteAheadLog::ReadAll(path, &torn);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_TRUE(torn);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].epoch, 1u);
}

TEST(WalTest, CorruptLengthPrefixReadsAsTornTail) {
  const std::string path = TestPath("badlen.log");
  uintmax_t first_record_end = 0;
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    IVM_ASSERT_OK((*wal)->AppendChangeSet(1, SampleDeltas()));
    first_record_end = fs::file_size(path);
    IVM_ASSERT_OK((*wal)->AppendChangeSet(2, SampleDeltas()));
  }
  // Smash the second record's 4-byte length prefix to ~0xFFFFFFFF. The
  // reader must treat the impossible length as a torn tail — not trust it
  // and attempt a ~4 GiB allocation.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(first_record_end));
    for (int i = 0; i < 4; ++i) f.put(static_cast<char>(0xFE));
  }
  bool torn = false;
  auto records = WriteAheadLog::ReadAll(path, &torn);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_TRUE(torn);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].epoch, 1u);
}

TEST(WalTest, TruncateToRollsBackAppendedRecords) {
  const std::string path = TestPath("truncate.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  IVM_ASSERT_OK((*wal)->AppendChangeSet(1, SampleDeltas()));
  const int64_t before = (*wal)->committed_size();
  IVM_ASSERT_OK((*wal)->AppendChangeSet(2, SampleDeltas()));
  IVM_ASSERT_OK((*wal)->TruncateTo(before));

  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].epoch, 1u);

  // The log keeps working: the next append reuses the rolled-back epoch.
  IVM_ASSERT_OK((*wal)->AppendChangeSet(2, SampleDeltas()));
  records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);

  // Targets outside [header, committed_size] are rejected.
  EXPECT_FALSE((*wal)->TruncateTo(2).ok());
  EXPECT_FALSE((*wal)->TruncateTo((*wal)->committed_size() + 1).ok());
}

TEST(WalTest, NonIncreasingEpochStopsReplay) {
  const std::string path = TestPath("epoch.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    IVM_ASSERT_OK((*wal)->AppendChangeSet(5, SampleDeltas()));
    IVM_ASSERT_OK((*wal)->AppendChangeSet(5, SampleDeltas()));  // stale epoch
  }
  bool torn = false;
  auto records = WriteAheadLog::ReadAll(path, &torn);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(records->size(), 1u);
}

TEST(WalTest, ResetTruncatesToHeader) {
  const std::string path = TestPath("reset.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  IVM_ASSERT_OK((*wal)->AppendChangeSet(1, SampleDeltas()));
  IVM_ASSERT_OK((*wal)->Reset());
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  // Appends keep working after a reset.
  IVM_ASSERT_OK((*wal)->AppendRemoveRule(2, 1));
  records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].epoch, 2u);
}

TEST(WalTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = TestPath("reopen.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    IVM_ASSERT_OK((*wal)->AppendChangeSet(1, SampleDeltas()));
  }
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    IVM_ASSERT_OK((*wal)->AppendChangeSet(2, SampleDeltas()));
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(WalTest, GarbageHeaderIsRejected) {
  const std::string path = TestPath("garbage.log");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTAWAL!respectfully";
  }
  auto wal = WriteAheadLog::Open(path);
  EXPECT_FALSE(wal.ok());
}

}  // namespace
}  // namespace ivm
