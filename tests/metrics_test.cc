// Tests for the observability layer (src/obs): registry primitives, the
// TraceSpan contract, and — via the redesigned ViewManager::Options API —
// deterministic counter oracles for the paper's worked examples:
//   * Example 5.1's boxed set-optimization suppression count, and
//   * Example 1.1's DRed over-delete / rederive split.
// Plus the zero-overhead contract: with no registry attached, the obs
// primitives perform no allocation and Apply allocates no more than the
// instrumented equivalent.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "core/view_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

// ---------------------------------------------------------------------------
// Allocation counting: replace the global allocator for this binary so tests
// can assert "no allocations happened here". Counts every successful
// operator new; deletes are uncounted (we only care about acquisition).
// ---------------------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ivm {
namespace {

using testing_util::MustParseProgram;

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry primitives.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersCreateOnFirstUseWithStableHandles) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter_value("apply.count"), 0u);
  Counter* c = reg.counter("apply.count");
  c->Add();
  c->Add(41);
  EXPECT_EQ(reg.counter_value("apply.count"), 42u);
  // Creating other metrics must not invalidate the handle (map nodes).
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  c->Add();
  EXPECT_EQ(reg.counter_value("apply.count"), 43u);
  EXPECT_EQ(reg.counter("apply.count"), c);
}

TEST(MetricsRegistryTest, GaugeSetAndSetMax) {
  MetricsRegistry reg;
  GaugeSet(&reg, "level", 7);
  EXPECT_EQ(reg.gauge_value("level"), 7);
  GaugeSet(&reg, "level", 3);
  EXPECT_EQ(reg.gauge_value("level"), 3);
  GaugeSetMax(&reg, "peak", 10);
  GaugeSetMax(&reg, "peak", 4);
  EXPECT_EQ(reg.gauge_value("peak"), 10);
  GaugeSetMax(&reg, "peak", 12);
  EXPECT_EQ(reg.gauge_value("peak"), 12);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  // Bucket 0 is [0, 1]; bucket i>0 is (2^(i-1), 2^i].
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketFor(1), 0);
  EXPECT_EQ(LatencyHistogram::BucketFor(2), 1);
  EXPECT_EQ(LatencyHistogram::BucketFor(3), 2);
  EXPECT_EQ(LatencyHistogram::BucketFor(4), 2);
  EXPECT_EQ(LatencyHistogram::BucketFor(5), 3);
  EXPECT_EQ(LatencyHistogram::BucketFor(1024), 10);
  EXPECT_EQ(LatencyHistogram::BucketFor(1025), 11);
  // Everything beyond 2^47 ns lands in the top bucket.
  EXPECT_EQ(LatencyHistogram::BucketFor(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(MetricsRegistryTest, HistogramStatsAndPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileNanos(50), 0u);
  h.Record(100);
  h.Record(200);
  h.Record(3000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total_ns(), 3300u);
  EXPECT_EQ(h.min_ns(), 100u);
  EXPECT_EQ(h.max_ns(), 3000u);
  // Nearest-rank over power-of-two buckets: the median sample (200) lands in
  // bucket (128, 256]; the p99 sample (3000) in (2048, 4096].
  EXPECT_EQ(h.PercentileNanos(50), 256u);
  EXPECT_EQ(h.PercentileNanos(99), 4096u);
}

TEST(MetricsRegistryTest, SpansRecordDepthAndDropBeyondCapacity) {
  MetricsRegistry reg;
  {
    TraceSpan outer(&reg, "outer");
    TraceSpan inner(&reg, "inner");
  }
  // Completion order: inner first, at depth 1.
  ASSERT_EQ(reg.spans().size(), 2u);
  EXPECT_STREQ(reg.spans()[0].name, "inner");
  EXPECT_EQ(reg.spans()[0].depth, 1);
  EXPECT_STREQ(reg.spans()[1].name, "outer");
  EXPECT_EQ(reg.spans()[1].depth, 0);
  // Every span also lands in its per-name latency histogram.
  ASSERT_NE(reg.FindHistogram("span.outer"), nullptr);
  EXPECT_EQ(reg.FindHistogram("span.outer")->count(), 1u);

  reg.Reset();
  reg.set_span_capacity(2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&reg, "s");
  }
  EXPECT_EQ(reg.spans().size(), 2u);
  EXPECT_EQ(reg.counter_value("obs.spans_dropped"), 3u);
  // The histogram still sees every span, only the records are bounded.
  EXPECT_EQ(reg.FindHistogram("span.s")->count(), 5u);

  auto drained = reg.DrainSpans();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(reg.spans().empty());
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  c->Add(5);
  reg.gauge("g")->Set(9);
  reg.histogram("h")->Record(50);
  reg.Reset();
  EXPECT_EQ(reg.counter_value("n"), 0u);
  EXPECT_EQ(reg.gauge_value("g"), 0);
  EXPECT_EQ(reg.FindHistogram("h")->count(), 0u);
  c->Add();  // the old handle still targets the live metric
  EXPECT_EQ(reg.counter_value("n"), 1u);
}

TEST(MetricsRegistryTest, ToJsonShape) {
  MetricsRegistry reg;
  reg.counter("a.count")->Add(3);
  reg.gauge("b.level")->Set(-2);
  reg.histogram("c.lat")->Record(100);
  {
    TraceSpan span(&reg, "apply");
  }
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"a.count\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"b.level\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(json.find("\"spans\""), std::string::npos);
  std::string with_spans = reg.ToJson(/*with_spans=*/true);
  EXPECT_NE(with_spans.find("\"spans\":[{\"name\":\"apply\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Deterministic pipeline oracles through ViewManager::Options.
// ---------------------------------------------------------------------------

constexpr const char* kTriHopProgram =
    "base link(S, D).\n"
    "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
    "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).";

TEST(MetricsPipelineTest, Example51SuppressionCountMatchesHandOracle) {
  // Example 4.2 / 5.1 setup: link = {ab, ad, dc, bc, ch, fg},
  // Δ(link) = {ab -1, df +1, af +1}, set semantics.
  MetricsRegistry metrics;
  ViewManager::Options options;
  options.strategy = Strategy::kCounting;
  options.semantics = Semantics::kSet;
  options.metrics = &metrics;
  auto vm = ViewManager::Create(MustParseProgram(kTriHopProgram), options)
                .value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).");
  vm->Initialize(db).CheckOK();
  metrics.Reset();  // drop initialization-time counts; measure one Apply

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  changes.Insert("link", Tup("d", "f"));
  changes.Insert("link", Tup("a", "f"));
  vm->Apply(changes).value();

  // Hand oracle. Count-level deltas per stratum:
  //   hop:     {ac -1, af +1, ag +1, dg +1}  -> 4 tuples
  //   tri_hop: {ag +1}                       -> 1 tuple
  // Membership deltas (boxed statement (2)):
  //   hop:     {af, ag, dg}  — "the tuple hop(ac -1) does not appear in
  //            Δ(hop) and is not cascaded" -> exactly 1 suppression
  //   tri_hop: {ag}          -> 0 suppressions
  EXPECT_EQ(metrics.counter_value("counting.suppressed"), 1u);
  EXPECT_EQ(metrics.counter_value("counting.deltas_emitted"), 4u);
  EXPECT_EQ(metrics.counter_value("counting.strata_processed"), 2u);
  EXPECT_EQ(metrics.counter_value("apply.base_delta_tuples"), 3u);
  // Δ(hop) ∪ Δ(tri_hop) as reported to the caller = {af, ag, dg} ∪ {ag}.
  EXPECT_EQ(metrics.counter_value("apply.view_delta_tuples"), 4u);
  EXPECT_EQ(metrics.counter_value("mutations.committed"), 1u);
}

TEST(MetricsPipelineTest, Example11DRedOverdeleteRederiveOracle) {
  // Example 1.1: link = {ab, bc, be, ad, dc}; delete link(a,b). DRed
  // "first deletes tuples hop(a,c) and hop(a,e)" (overestimate = 2), then
  // "hop(a,c) is rederived and reinserted" (rederived = 1); nothing new is
  // inserted (inserted = 0).
  MetricsRegistry metrics;
  ViewManager::Options options;
  options.strategy = Strategy::kDRed;
  options.metrics = &metrics;
  auto vm = ViewManager::Create(
                MustParseProgram("base link(S, D). "
                                 "hop(X, Y) :- link(X, Z) & link(Z, Y)."),
                options)
                .value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  vm->Initialize(db).CheckOK();
  metrics.Reset();

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  vm->Apply(changes).value();

  EXPECT_EQ(metrics.counter_value("dred.overdeleted"), 2u);
  EXPECT_EQ(metrics.counter_value("dred.rederived"), 1u);
  EXPECT_EQ(metrics.counter_value("dred.inserted"), 0u);
  // Net view change reported to the caller: hop(a,e) deleted.
  EXPECT_EQ(metrics.counter_value("apply.view_delta_tuples"), 1u);
}

TEST(MetricsPipelineTest, PlanCacheMissesThenHitsAcrossApplies) {
  // The first Apply plans every delta rule (all misses); a second,
  // identically-shaped batch replays the cached orders (all hits, no new
  // misses). The counters surface in the JSON export.
  MetricsRegistry metrics;
  ViewManager::Options options;
  options.strategy = Strategy::kCounting;
  options.semantics = Semantics::kSet;
  options.metrics = &metrics;
  auto vm = ViewManager::Create(MustParseProgram(kTriHopProgram), options)
                .value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c). link(c,d).");
  vm->Initialize(db).CheckOK();
  metrics.Reset();

  ChangeSet first;
  first.Insert("link", Tup("d", "e"));
  vm->Apply(first).value();
  const uint64_t misses = metrics.counter_value("eval.plan_cache.misses");
  EXPECT_GT(misses, 0u);
  EXPECT_EQ(metrics.counter_value("eval.plan_cache.hits"), 0u);

  ChangeSet second;
  second.Insert("link", Tup("e", "f"));
  vm->Apply(second).value();
  EXPECT_EQ(metrics.counter_value("eval.plan_cache.misses"), misses);
  EXPECT_EQ(metrics.counter_value("eval.plan_cache.hits"), misses);

  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"eval.plan_cache.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"eval.plan_cache.misses\""), std::string::npos);
}

TEST(MetricsPipelineTest, PlanCacheInvalidatedOnRuleChange) {
  // DRed re-plans after AddRule: rule indexes are positional, so the whole
  // cache is dropped (exactly one invalidation) and the next maintenance
  // records fresh misses instead of hits.
  MetricsRegistry metrics;
  ViewManager::Options options;
  options.strategy = Strategy::kDRed;
  options.metrics = &metrics;
  auto vm = ViewManager::Create(
                MustParseProgram("base link(S, D). "
                                 "hop(X, Y) :- link(X, Z) & link(Z, Y)."),
                options)
                .value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c). link(b,e).");
  vm->Initialize(db).CheckOK();
  metrics.Reset();

  ChangeSet warm;
  warm.Delete("link", Tup("a", "b"));
  vm->Apply(warm).value();
  EXPECT_GT(metrics.counter_value("eval.plan_cache.misses"), 0u);
  EXPECT_EQ(metrics.counter_value("eval.plan_cache.invalidations"), 0u);

  vm->AddRuleText("far(X, Y) :- hop(X, Z) & link(Z, Y).").value();
  EXPECT_EQ(metrics.counter_value("eval.plan_cache.invalidations"), 1u);
}

TEST(MetricsPipelineTest, SpansCoverApplyAndStrata) {
  MetricsRegistry metrics;
  ViewManager::Options options;
  options.strategy = Strategy::kCounting;
  options.metrics = &metrics;
  auto vm = ViewManager::Create(MustParseProgram(kTriHopProgram), options)
                .value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  vm->Initialize(db).CheckOK();
  metrics.DrainSpans();

  ChangeSet changes;
  changes.Insert("link", Tup("c", "d"));
  vm->Apply(changes).value();

  // One apply span at depth 0, one counting.stratum span per stratum at
  // depth 1, nested inside it.
  int apply_spans = 0;
  int stratum_spans = 0;
  for (const SpanRecord& s : metrics.spans()) {
    if (std::string(s.name) == "apply") {
      ++apply_spans;
      EXPECT_EQ(s.depth, 0);
    } else if (std::string(s.name) == "counting.stratum") {
      ++stratum_spans;
      EXPECT_EQ(s.depth, 1);
    }
  }
  EXPECT_EQ(apply_spans, 1);
  EXPECT_EQ(stratum_spans, 2);
  ASSERT_NE(metrics.FindHistogram("span.apply"), nullptr);
  EXPECT_EQ(metrics.FindHistogram("span.apply")->count(), 1u);
}

// ---------------------------------------------------------------------------
// The zero-overhead contract.
// ---------------------------------------------------------------------------

TEST(MetricsOverheadTest, NullRegistryPrimitivesDoNotAllocate) {
  const uint64_t before = AllocCount();
  {
    TraceSpan span(nullptr, "nothing");
    CounterAdd(nullptr, "nothing");
    CounterAdd(nullptr, "nothing", 17);
    GaugeSet(nullptr, "nothing", 3);
    GaugeSetMax(nullptr, "nothing", 4);
  }
  EXPECT_EQ(AllocCount(), before);
}

TEST(MetricsOverheadTest, ApplyWithoutRegistryAllocatesNoMoreThanWith) {
  // Two identical managers over identical databases; the library is
  // deterministic, so any allocation difference is the obs layer's.
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).");

  MetricsRegistry metrics;
  ViewManager::Options with_metrics;
  with_metrics.strategy = Strategy::kCounting;
  with_metrics.metrics = &metrics;
  auto vm_with =
      ViewManager::Create(MustParseProgram(kTriHopProgram), with_metrics)
          .value();
  vm_with->Initialize(db).CheckOK();

  auto vm_without = ViewManager::Create(MustParseProgram(kTriHopProgram),
                                        ViewManager::Options{})
                        .value();
  vm_without->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  changes.Insert("link", Tup("a", "f"));
  ChangeSet inverse;
  inverse.Insert("link", Tup("a", "b"));
  inverse.Delete("link", Tup("a", "f"));

  // Warm both managers (first Apply populates lazily-built structures; the
  // instrumented one also creates its metric map nodes here).
  vm_with->Apply(changes).value();
  vm_with->Apply(inverse).value();
  vm_without->Apply(changes).value();
  vm_without->Apply(inverse).value();

  uint64_t start = AllocCount();
  vm_with->Apply(changes).value();
  vm_with->Apply(inverse).value();
  const uint64_t with_allocs = AllocCount() - start;

  start = AllocCount();
  vm_without->Apply(changes).value();
  vm_without->Apply(inverse).value();
  const uint64_t without_allocs = AllocCount() - start;

  EXPECT_LE(without_allocs, with_allocs);
}

}  // namespace
}  // namespace ivm
