#include "eval/aggregates.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

/// Returns the aggregate literal of rule 0 of `program_text`.
struct AggFixture {
  Program program;
  const Literal* lit;
};

AggFixture MakeAgg(const std::string& program_text) {
  AggFixture f;
  f.program = MustParseProgram(program_text);
  f.lit = &f.program.rule(0).body[0];
  EXPECT_EQ(f.lit->kind, Literal::Kind::kAggregate);
  return f;
}

constexpr const char* kMinProgram =
    "base hop(S, D, C).\n"
    "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).";

TEST(AggregatesTest, MinPerGroup) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u = testing_util::MustMakeRelation(
      "hop", 3, "hop(a, b, 10). hop(a, b, 7). hop(a, c, 3).");
  Relation t = EvaluateAggregate(*f.lit, u, /*multiset=*/false).value();
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.Contains(Tup("a", "b", 7)));
  EXPECT_TRUE(t.Contains(Tup("a", "c", 3)));
}

TEST(AggregatesTest, SumCountAvgMax) {
  Program p = MustParseProgram(
      "base v(G, X).\n"
      "s(G, R) :- groupby(v(G, X), [G], R = sum(X)).\n"
      "c(G, R) :- groupby(v(G, X), [G], R = count(*)).\n"
      "a(G, R) :- groupby(v(G, X), [G], R = avg(X)).\n"
      "m(G, R) :- groupby(v(G, X), [G], R = max(X)).");
  Relation u = testing_util::MustMakeRelation(
      "v", 2, "v(g, 1). v(g, 2). v(g, 3). v(h, 10).");
  Relation s = EvaluateAggregate(p.rule(0).body[0], u, false).value();
  EXPECT_TRUE(s.Contains(Tup("g", 6)));
  EXPECT_TRUE(s.Contains(Tup("h", 10)));
  Relation c = EvaluateAggregate(p.rule(1).body[0], u, false).value();
  EXPECT_TRUE(c.Contains(Tup("g", 3)));
  EXPECT_TRUE(c.Contains(Tup("h", 1)));
  Relation a = EvaluateAggregate(p.rule(2).body[0], u, false).value();
  EXPECT_TRUE(a.Contains(Tup("g", 2.0)));
  Relation m = EvaluateAggregate(p.rule(3).body[0], u, false).value();
  EXPECT_TRUE(m.Contains(Tup("g", 3)));
}

TEST(AggregatesTest, MultisetWeighting) {
  Program p = MustParseProgram(
      "base v(G, X). s(G, R) :- groupby(v(G, X), [G], R = sum(X)).");
  Relation u("v", 2);
  u.Add(Tup("g", 5), 3);  // three derivations of the same tuple
  u.Add(Tup("g", 1), 1);
  Relation multiset = EvaluateAggregate(p.rule(0).body[0], u, true).value();
  EXPECT_TRUE(multiset.Contains(Tup("g", 16)));
  Relation set = EvaluateAggregate(p.rule(0).body[0], u, false).value();
  EXPECT_TRUE(set.Contains(Tup("g", 6)));
}

TEST(AggregatesTest, GlobalAggregateSingleGroup) {
  Program p = MustParseProgram(
      "base v(X). total(R) :- groupby(v(X), [], R = sum(X)).");
  Relation u = testing_util::MustMakeRelation("v", 1, "v(1). v(2). v(3).");
  Relation t = EvaluateAggregate(p.rule(0).body[0], u, false).value();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains(Tup(6)));
}

TEST(AggregatesTest, AggregateOverExpression) {
  Program p = MustParseProgram(
      "base v(G, X, Y). s(G, R) :- groupby(v(G, X, Y), [G], R = sum(X * Y)).");
  Relation u = testing_util::MustMakeRelation("v", 3, "v(g, 2, 3). v(g, 4, 5).");
  Relation t = EvaluateAggregate(p.rule(0).body[0], u, false).value();
  EXPECT_TRUE(t.Contains(Tup("g", 26)));
}

TEST(AggregatesTest, EmptyRelationYieldsNoGroups) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u("hop", 3);
  Relation t = EvaluateAggregate(*f.lit, u, false).value();
  EXPECT_TRUE(t.empty());
}

TEST(AggregatesTest, DeltaInsertIntoNewGroup) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u = testing_util::MustMakeRelation("hop", 3, "hop(a, b, 5).");
  Relation delta("Δhop", 3);
  delta.Add(Tup("x", "y", 9), 1);
  Relation dt = AggregateDelta(*f.lit, u, delta, false).value();
  EXPECT_EQ(dt.size(), 1u);
  EXPECT_EQ(dt.Count(Tup("x", "y", 9)), 1);
}

TEST(AggregatesTest, DeltaInsertImprovesMin) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u = testing_util::MustMakeRelation("hop", 3, "hop(a, b, 5). hop(a, b, 8).");
  Relation delta("Δhop", 3);
  delta.Add(Tup("a", "b", 3), 1);
  Relation dt = AggregateDelta(*f.lit, u, delta, false).value();
  // Algorithm 6.1: old tuple out (-1), new tuple in (+1).
  EXPECT_EQ(dt.Count(Tup("a", "b", 5)), -1);
  EXPECT_EQ(dt.Count(Tup("a", "b", 3)), 1);
}

TEST(AggregatesTest, DeltaInsertAboveMinIsNoop) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u = testing_util::MustMakeRelation("hop", 3, "hop(a, b, 5).");
  Relation delta("Δhop", 3);
  delta.Add(Tup("a", "b", 9), 1);
  Relation dt = AggregateDelta(*f.lit, u, delta, false).value();
  EXPECT_TRUE(dt.empty());
}

TEST(AggregatesTest, DeltaDeleteOfMinRescansGroup) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u = testing_util::MustMakeRelation(
      "hop", 3, "hop(a, b, 5). hop(a, b, 8). hop(a, b, 11).");
  Relation delta("Δhop", 3);
  delta.Add(Tup("a", "b", 5), -1);
  Relation dt = AggregateDelta(*f.lit, u, delta, false).value();
  EXPECT_EQ(dt.Count(Tup("a", "b", 5)), -1);
  EXPECT_EQ(dt.Count(Tup("a", "b", 8)), 1);
}

TEST(AggregatesTest, DeltaDeleteLastTupleRemovesGroup) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u = testing_util::MustMakeRelation("hop", 3, "hop(a, b, 5).");
  Relation delta("Δhop", 3);
  delta.Add(Tup("a", "b", 5), -1);
  Relation dt = AggregateDelta(*f.lit, u, delta, false).value();
  EXPECT_EQ(dt.size(), 1u);
  EXPECT_EQ(dt.Count(Tup("a", "b", 5)), -1);
}

TEST(AggregatesTest, DeltaTouchesOnlyChangedGroups) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u("hop", 3);
  for (int g = 0; g < 100; ++g) u.Add(Tup(g, g, g + 100), 1);
  Relation delta("Δhop", 3);
  delta.Add(Tup(7, 7, 1), 1);
  Relation dt = AggregateDelta(*f.lit, u, delta, false).value();
  EXPECT_EQ(dt.size(), 2u);  // only group (7,7) changes
}

TEST(AggregatesTest, DeltaSumIncremental) {
  Program p = MustParseProgram(
      "base v(G, X). s(G, R) :- groupby(v(G, X), [G], R = sum(X)).");
  Relation u = testing_util::MustMakeRelation("v", 2, "v(g, 1). v(g, 2).");
  Relation delta("Δv", 2);
  delta.Add(Tup("g", 7), 1);
  delta.Add(Tup("g", 1), -1);
  Relation dt = AggregateDelta(p.rule(0).body[0], u, delta, false).value();
  EXPECT_EQ(dt.Count(Tup("g", 3)), -1);
  EXPECT_EQ(dt.Count(Tup("g", 9)), 1);
}

TEST(AggregatesTest, DeltaFromNewExtent) {
  // u_ref_is_new = true: the reference relation is the post-update state.
  Program p = MustParseProgram(
      "base v(G, X). s(G, R) :- groupby(v(G, X), [G], R = sum(X)).");
  Relation u_new = testing_util::MustMakeRelation("v", 2, "v(g, 2). v(g, 7).");
  Relation delta("Δv", 2);
  delta.Add(Tup("g", 7), 1);
  delta.Add(Tup("g", 1), -1);
  // So old = {g:2, g:1}: old sum 3, new sum 9.
  Relation dt =
      AggregateDelta(p.rule(0).body[0], u_new, delta, false, true).value();
  EXPECT_EQ(dt.Count(Tup("g", 3)), -1);
  EXPECT_EQ(dt.Count(Tup("g", 9)), 1);
}

TEST(AggregatesTest, DeltaOverDeletionErrors) {
  AggFixture f = MakeAgg(kMinProgram);
  Relation u = testing_util::MustMakeRelation("hop", 3, "hop(a, b, 5).");
  Relation delta("Δhop", 3);
  delta.Add(Tup("a", "b", 9), -1);  // not present
  EXPECT_FALSE(AggregateDelta(*f.lit, u, delta, false).ok());
}

TEST(AggregatesTest, PatternWithConstantFilters) {
  Program p = MustParseProgram(
      "base v(G, T, X). s(G, R) :- groupby(v(G, red, X), [G], R = sum(X)).");
  Relation u = testing_util::MustMakeRelation(
      "v", 3, "v(g, red, 1). v(g, blue, 50). v(g, red, 2).");
  Relation t = EvaluateAggregate(p.rule(0).body[0], u, false).value();
  EXPECT_TRUE(t.Contains(Tup("g", 3)));
}

TEST(AggregatesTest, AggregatePatternShape) {
  AggFixture f = MakeAgg(kMinProgram);
  std::vector<Term> pattern = AggregatePattern(*f.lit);
  ASSERT_EQ(pattern.size(), 3u);
  EXPECT_EQ(pattern[0].var_name(), "S");
  EXPECT_EQ(pattern[1].var_name(), "D");
  EXPECT_EQ(pattern[2].var_name(), "M");
}

}  // namespace
}  // namespace ivm
