#include "sql/sql_dml.h"

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "sql/sql_translator.h"
#include "test_util.h"

namespace ivm {
namespace {

const std::vector<std::string> kCols = {"s", "d", "c"};

Relation LinkExtent() {
  Relation rel("link", 3);
  rel.Add(Tup("a", "b", 1), 1);
  rel.Add(Tup("b", "c", 5), 1);
  rel.Add(Tup("a", "c", 9), 1);
  return rel;
}

SqlStatement ParseOne(const std::string& sql) {
  auto stmts = ParseSql(sql);
  EXPECT_TRUE(stmts.ok()) << stmts.status().ToString();
  EXPECT_EQ(stmts->size(), 1u);
  return (*stmts)[0];
}

TEST(SqlDmlTest, InsertValues) {
  SqlStatement stmt =
      ParseOne("INSERT INTO link VALUES ('x', 'y', 3), ('y', 'z', 4);");
  Relation extent = LinkExtent();
  ChangeSet out = CompileDml(stmt, kCols, extent).value();
  EXPECT_EQ(out.Delta("link").Count(Tup("x", "y", 3)), 1);
  EXPECT_EQ(out.Delta("link").Count(Tup("y", "z", 4)), 1);
}

TEST(SqlDmlTest, InsertWithColumnList) {
  SqlStatement stmt =
      ParseOne("INSERT INTO link(c, s, d) VALUES (7, 'p', 'q');");
  Relation extent = LinkExtent();
  ChangeSet out = CompileDml(stmt, kCols, extent).value();
  EXPECT_EQ(out.Delta("link").Count(Tup("p", "q", 7)), 1);
}

TEST(SqlDmlTest, DeleteWithWhere) {
  SqlStatement stmt = ParseOne("DELETE FROM link WHERE s = 'a';");
  Relation extent = LinkExtent();
  ChangeSet out = CompileDml(stmt, kCols, extent).value();
  EXPECT_EQ(out.Delta("link").Count(Tup("a", "b", 1)), -1);
  EXPECT_EQ(out.Delta("link").Count(Tup("a", "c", 9)), -1);
  EXPECT_FALSE(out.Delta("link").Contains(Tup("b", "c", 5)));
}

TEST(SqlDmlTest, DeleteWithComparison) {
  SqlStatement stmt = ParseOne("DELETE FROM link WHERE c > 4 AND s <> 'a';");
  ChangeSet out = CompileDml(stmt, kCols, LinkExtent()).value();
  EXPECT_EQ(out.Delta("link").size(), 1u);
  EXPECT_EQ(out.Delta("link").Count(Tup("b", "c", 5)), -1);
}

TEST(SqlDmlTest, DeleteWithoutWhereClearsTable) {
  SqlStatement stmt = ParseOne("DELETE FROM link;");
  ChangeSet out = CompileDml(stmt, kCols, LinkExtent()).value();
  EXPECT_EQ(out.Delta("link").size(), 3u);
}

TEST(SqlDmlTest, UpdateSetsFromOldRow) {
  SqlStatement stmt = ParseOne("UPDATE link SET c = c + 10 WHERE s = 'a';");
  ChangeSet out = CompileDml(stmt, kCols, LinkExtent()).value();
  EXPECT_EQ(out.Delta("link").Count(Tup("a", "b", 1)), -1);
  EXPECT_EQ(out.Delta("link").Count(Tup("a", "b", 11)), 1);
  EXPECT_EQ(out.Delta("link").Count(Tup("a", "c", 9)), -1);
  EXPECT_EQ(out.Delta("link").Count(Tup("a", "c", 19)), 1);
}

TEST(SqlDmlTest, UpdateNoopWhenValueUnchanged) {
  SqlStatement stmt = ParseOne("UPDATE link SET c = c WHERE s = 'a';");
  ChangeSet out = CompileDml(stmt, kCols, LinkExtent()).value();
  EXPECT_TRUE(out.empty());
}

TEST(SqlDmlTest, ErrorsOnUnknownColumn) {
  SqlStatement del = ParseOne("DELETE FROM link WHERE nope = 1;");
  EXPECT_FALSE(CompileDml(del, kCols, LinkExtent()).ok());
  SqlStatement upd = ParseOne("UPDATE link SET nope = 1;");
  EXPECT_FALSE(CompileDml(upd, kCols, LinkExtent()).ok());
}

TEST(SqlDmlTest, ErrorsOnArityMismatch) {
  SqlStatement stmt = ParseOne("INSERT INTO link VALUES ('x', 'y');");
  EXPECT_FALSE(CompileDml(stmt, kCols, LinkExtent()).ok());
}

TEST(SqlDmlTest, EndToEndWithViewMaintenance) {
  SqlTranslator translator;
  IVM_ASSERT_OK(translator.AddScript(
      "CREATE TABLE link(s, d);"
      "CREATE VIEW hop(s, d) AS SELECT r1.s, r2.d FROM link r1, link r2 "
      "WHERE r1.d = r2.s;"));
  auto vm = ViewManager::Create(translator.Build().value()).value();
  Database db;
  db.CreateRelation("link", 2).CheckOK();
  IVM_ASSERT_OK(vm->Initialize(db));

  class Source : public DmlSource {
   public:
    Source(ViewManager* vm, SqlTranslator* tr) : vm_(vm), tr_(tr) {}
    Result<const Relation*> GetExtent(const std::string& t) const override {
      return vm_->snapshot().Get(t);
    }
    Result<std::vector<std::string>> GetColumns(
        const std::string& t) const override {
      return tr_->ColumnsOf(t);
    }
   private:
    ViewManager* vm_;
    SqlTranslator* tr_;
  };
  Source source(vm.get(), &translator);

  ChangeSet insert = CompileDmlScript(
      "INSERT INTO link VALUES ('a','b'), ('b','c');", source).value();
  ChangeSet out1 = vm->Apply(insert).value();
  EXPECT_EQ(out1.Delta("hop").Count(Tup("a", "c")), 1);

  ChangeSet remove =
      CompileDmlScript("DELETE FROM link WHERE s = 'a';", source).value();
  ChangeSet out2 = vm->Apply(remove).value();
  EXPECT_EQ(out2.Delta("hop").Count(Tup("a", "c")), -1);
  EXPECT_TRUE(vm->snapshot().Get("hop").value()->empty());
}

}  // namespace
}  // namespace ivm
