#include "core/explain.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

TEST(ExplainTest, HopDeltaProgram) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  std::string delta = ExplainDeltaProgram(p).value();
  EXPECT_EQ(delta,
            "Δhop(X, Y) :- Δ(link(X, Z)) & link(Z, Y).\n"
            "Δhop(X, Y) :- link(X, Z)^new & Δ(link(Z, Y)).\n");
}

TEST(ExplainTest, FullReportSections) {
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).");
  std::string report = ExplainProgram(p).value();
  EXPECT_NE(report.find("stratum 0: link (base)"), std::string::npos);
  EXPECT_NE(report.find("stratum 1: hop"), std::string::npos);
  EXPECT_NE(report.find("stratum 2: tri_hop"), std::string::npos);
  EXPECT_NE(report.find("[0] (RSN 1)"), std::string::npos);
  EXPECT_NE(report.find("[1] (RSN 2)"), std::string::npos);
  EXPECT_NE(report.find("Δtri_hop"), std::string::npos);
}

TEST(ExplainTest, MarksRecursivePredicates) {
  Program p = MustParseProgram(
      "base e(X, Y). p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z) & e(Z, Y).");
  std::string report = ExplainProgram(p).value();
  EXPECT_NE(report.find("p (recursive)"), std::string::npos);
}

TEST(ExplainTest, DeltaPositionsForNegationAndAggregation) {
  Program p = MustParseProgram(
      "base e(X). base q(X).\n"
      "v(X) :- e(X) & !q(X).\n"
      "c(N) :- groupby(e(X), [], N = count(*)).");
  std::string delta = ExplainDeltaProgram(p).value();
  // One delta rule per atom-based literal, including the negated and
  // aggregate subgoals.
  EXPECT_NE(delta.find("Δ(!q(X))"), std::string::npos);
  EXPECT_NE(delta.find("Δ(groupby(e(X), [], N = count(1)))"),
            std::string::npos);
}

TEST(ExplainTest, RequiresAnalyzedProgram) {
  Program p;
  EXPECT_FALSE(ExplainProgram(p).ok());
}

}  // namespace
}  // namespace ivm
