// End-to-end scenario tests exercising many features together, the way an
// application would: a social-network recommendation stack (SQL-defined,
// counting-maintained) and an org-chart/permissions stack (recursive,
// DRed-maintained), driven through realistic update sequences with oracle
// checks along the way.

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "eval/evaluator.h"
#include "sql/sql_dml.h"
#include "sql/sql_translator.h"
#include "storage/io.h"
#include "test_util.h"

namespace ivm {
namespace {

class VmSource : public DmlSource {
 public:
  VmSource(ViewManager* vm, SqlTranslator* tr) : vm_(vm), tr_(tr) {}
  Result<const Relation*> GetExtent(const std::string& t) const override {
    return vm_->snapshot().Get(t);
  }
  Result<std::vector<std::string>> GetColumns(
      const std::string& t) const override {
    return tr_->ColumnsOf(t);
  }

 private:
  ViewManager* vm_;
  SqlTranslator* tr_;
};

TEST(IntegrationTest, SocialNetworkRecommendations) {
  // friend-of-friend recommendations: pairs two hops apart, not already
  // friends, ranked by the number of mutual friends.
  SqlTranslator tr;
  IVM_ASSERT_OK(tr.AddScript(R"sql(
    CREATE TABLE follows(src, dst);

    CREATE VIEW fof(src, dst) AS
      SELECT f1.src, f2.dst FROM follows f1, follows f2
      WHERE f1.dst = f2.src;

    CREATE VIEW candidates(src, dst) AS
      SELECT src, dst FROM fof
      EXCEPT
      SELECT src, dst FROM follows;

    CREATE VIEW mutual_count(src, dst, n) AS
      SELECT f1.src, f2.dst, COUNT(*) FROM follows f1, follows f2
      WHERE f1.dst = f2.src GROUP BY f1.src, f2.dst;
  )sql"));
  auto vm = ViewManager::Create(tr.Build().value(),
                                testing_util::ManagerOptions(
                                    Strategy::kCounting))
                .value();
  Database db;
  db.CreateRelation("follows", 2).CheckOK();
  IVM_ASSERT_OK(vm->Initialize(db));
  VmSource source(vm.get(), &tr);

  // Seed the graph: ada -> {bob, cam}; bob -> dan; cam -> dan.
  ChangeSet seed = CompileDmlScript(
      "INSERT INTO follows VALUES ('ada','bob'), ('ada','cam'), "
      "('bob','dan'), ('cam','dan');",
      source).value();
  vm->Apply(seed).value();

  // ada is two hops from dan via both bob and cam.
  EXPECT_TRUE(vm->snapshot().Get("candidates").value()->Contains(Tup("ada", "dan")));
  EXPECT_TRUE(
      vm->snapshot().Get("mutual_count").value()->Contains(Tup("ada", "dan", 2)));

  // ada follows dan: the recommendation must disappear (EXCEPT path).
  ChangeSet follow = CompileDmlScript(
      "INSERT INTO follows VALUES ('ada','dan');", source).value();
  ChangeSet out = vm->Apply(follow).value();
  EXPECT_EQ(out.Delta("candidates").Count(Tup("ada", "dan")), -1);
  EXPECT_FALSE(vm->snapshot().Get("candidates").value()->Contains(Tup("ada", "dan")));

  // bob unfollows dan: mutual count drops to 1.
  ChangeSet unfollow = CompileDmlScript(
      "DELETE FROM follows WHERE src = 'bob' AND dst = 'dan';", source).value();
  ChangeSet out2 = vm->Apply(unfollow).value();
  EXPECT_EQ(out2.Delta("mutual_count").Count(Tup("ada", "dan", 2)), -1);
  EXPECT_EQ(out2.Delta("mutual_count").Count(Tup("ada", "dan", 1)), 1);
}

TEST(IntegrationTest, OrgChartPermissions) {
  // Recursive management chain with per-person grants and revocations:
  // a person can access a resource if someone in their management chain
  // (including themselves) holds a grant that is not revoked.
  auto vm = ViewManager::CreateFromText(
      "base manages(Mgr, Emp).\n"
      "base grant(Person, Resource).\n"
      "base revoked(Person, Resource).\n"
      "chain(M, E) :- manages(M, E).\n"
      "chain(M, E) :- chain(M, X) & manages(X, E).\n"
      "holds(P, R) :- grant(P, R) & !revoked(P, R).\n"
      "access(E, R) :- holds(E, R).\n"
      "access(E, R) :- chain(M, E) & holds(M, R).\n"
      "access_count(R, N) :- groupby(access(E, R), [R], N = count(*)).",
      testing_util::ManagerOptions(Strategy::kDRed)).value();

  Database db;
  testing_util::MustLoadFacts(&db,
                              "manages(root, alice). manages(alice, bob). "
                              "manages(alice, carol). manages(bob, dave). "
                              "grant(alice, repo).");
  db.CreateRelation("revoked", 2).CheckOK();
  IVM_ASSERT_OK(vm->Initialize(db));

  // alice's grant flows to bob, carol, dave (and alice).
  const Relation& access = *vm->snapshot().Get("access").value();
  EXPECT_TRUE(access.Contains(Tup("dave", "repo")));
  EXPECT_TRUE(access.Contains(Tup("carol", "repo")));
  EXPECT_FALSE(access.Contains(Tup("root", "repo")));
  EXPECT_TRUE(vm->snapshot().Get("access_count").value()->Contains(Tup("repo", 4)));

  // Re-org: dave moves under carol. His access survives (carol is still
  // under alice).
  ChangeSet reorg;
  reorg.Update("manages", Tup("bob", "dave"), Tup("carol", "dave"));
  ChangeSet out = vm->Apply(reorg).value();
  EXPECT_TRUE(vm->snapshot().Get("access").value()->Contains(Tup("dave", "repo")));
  EXPECT_FALSE(out.Delta("access").Contains(Tup("dave", "repo")));

  // Revoking alice's grant kills everyone's access (negation over base).
  ChangeSet revoke;
  revoke.Insert("revoked", Tup("alice", "repo"));
  ChangeSet out2 = vm->Apply(revoke).value();
  EXPECT_EQ(out2.Delta("access").Count(Tup("dave", "repo")), -1);
  EXPECT_TRUE(vm->snapshot().Get("access").value()->empty());
  EXPECT_EQ(out2.Delta("access_count").Count(Tup("repo", 4)), -1);

  // A live policy change: also allow peer visibility (view redefinition).
  ChangeSet undo_revoke;
  undo_revoke.Delete("revoked", Tup("alice", "repo"));
  vm->Apply(undo_revoke).value();
  ChangeSet out3 =
      vm->AddRuleText("access(E, R) :- manages(M, E) & holds(M, R).").value();
  // The new rule is redundant here (chain covers direct reports), so no
  // visible change.
  EXPECT_TRUE(out3.empty());

  // Final cross-check against from-scratch evaluation.
  Database snapshot;
  for (PredicateId b : vm->program().BasePredicates()) {
    const auto& info = vm->program().predicate(b);
    snapshot.CreateRelation(info.name, info.arity).CheckOK();
    snapshot.mutable_relation(info.name) = **vm->snapshot().Get(info.name);
  }
  Evaluator ev(vm->program(), {Semantics::kSet, false});
  std::map<PredicateId, Relation> views;
  ev.EvaluateAll(snapshot, &views).CheckOK();
  for (const auto& [pred, expected] : views) {
    const std::string& name = vm->program().predicate(pred).name;
    EXPECT_TRUE(vm->snapshot().Get(name).value()->SameSet(expected)) << name;
  }
}

TEST(IntegrationTest, CsvToViewsPipeline) {
  // Load base data from CSV text, maintain, export a view as CSV.
  auto vm = ViewManager::CreateFromText(
      "base sales(Region, Product, Amount).\n"
      "by_region(R, T) :- groupby(sales(R, P, A), [R], T = sum(A)).").value();
  Database db;
  db.CreateRelation("sales", 3).CheckOK();
  IVM_ASSERT_OK(vm->Initialize(db));

  Relation rows("rows", 3);
  IVM_ASSERT_OK(ReadCsvString(
      "east,widget,10\neast,gadget,5\nwest,widget,7\n", CsvOptions(), &rows));
  ChangeSet load;
  load.Merge("sales", rows);
  vm->Apply(load).value();
  EXPECT_EQ(WriteCsvString(*vm->snapshot().Get("by_region").value(), CsvOptions()),
            "east,15\nwest,7\n");
}

}  // namespace
}  // namespace ivm
