// Randomized view-redefinition testing (Section 7): interleave base-data
// batches with rule additions/removals and check DRed's materializations
// against from-scratch evaluation of the then-current program after every
// step.

#include <random>

#include <gtest/gtest.h>

#include "core/dred.h"
#include "eval/evaluator.h"
#include "test_util.h"
#include "workload/update_gen.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

/// Candidate rules to toggle. All heads are `path`; bodies reference only
/// `edge` and `path` so any subset yields a valid program (the base-case
/// rule stays fixed so `path` never becomes undefined while referenced).
const char* const kOptionalRules[] = {
    "path(X, Y) :- path(X, Z) & edge(Z, Y).",
    "path(X, Y) :- edge(Y, X).",
    "path(X, Y) :- edge(X, Z) & edge(Z, Y).",
    "path(X, X) :- edge(X, _).",
};

void CheckAgainstRecompute(const DRedMaintainer& m) {
  const Program& p = m.program();
  Database db;
  for (PredicateId b : p.BasePredicates()) {
    const auto& info = p.predicate(b);
    db.CreateRelation(info.name, info.arity).CheckOK();
    db.mutable_relation(info.name) = **m.GetRelation(info.name);
  }
  Evaluator ev(p, {Semantics::kSet, false});
  std::map<PredicateId, Relation> views;
  ev.EvaluateAll(db, &views).CheckOK();
  for (const auto& [pred, expected] : views) {
    const Relation& actual = **m.GetRelation(p.predicate(pred).name);
    ASSERT_TRUE(actual.SameSet(expected))
        << p.predicate(pred).name << "\nactual:   " << actual.ToString()
        << "\nexpected: " << expected.ToString()
        << "\nprogram:\n" << p.ToString();
  }
}

class RuleChangePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuleChangePropertyTest, RedefinitionsMatchRecompute) {
  std::mt19937_64 rng(GetParam());
  auto m = DRedMaintainer::Create(MustParseProgram(
      "base edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).")).value();
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  std::uniform_int_distribution<int> node(0, 9);
  for (int i = 0; i < 18; ++i) {
    int a = node(rng), b = node(rng);
    if (a != b) db.mutable_relation("edge").Set(Tup(a, b), 1);
  }
  m->Initialize(db).CheckOK();

  // Which optional rules are currently installed, by text.
  std::map<std::string, bool> installed;
  for (const char* rule : kOptionalRules) installed[rule] = false;

  std::uniform_int_distribution<int> which(0, std::size(kOptionalRules) - 1);
  std::uniform_int_distribution<int> action(0, 2);
  for (int step = 0; step < 14; ++step) {
    int act = action(rng);
    if (act == 0) {
      // Toggle a rule.
      const char* text = kOptionalRules[which(rng)];
      if (!installed[text]) {
        auto r = m->AddRuleText(text);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        installed[text] = true;
      } else {
        // Find its index in the current program.
        Rule parsed = ParseRule(text).value();
        int index = -1;
        for (size_t i = 0; i < m->program().num_rules(); ++i) {
          if (m->program().rule(static_cast<int>(i)).ToString() ==
              parsed.ToString()) {
            index = static_cast<int>(i);
          }
        }
        ASSERT_GE(index, 0) << text;
        auto r = m->RemoveRule(index);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        installed[text] = false;
      }
    } else {
      // A data batch.
      ChangeSet batch;
      const Relation& edge = **m->GetRelation("edge");
      for (const Tuple& t : SampleTuples(edge, 2, rng())) {
        batch.Delete("edge", t);
      }
      for (int i = 0; i < 2; ++i) {
        int a = node(rng), b = node(rng);
        Tuple t = Tup(a, b);
        if (a != b && !edge.Contains(t) && !batch.Delta("edge").Contains(t)) {
          batch.Insert("edge", t);
        }
      }
      auto r = m->Apply(batch);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    CheckAgainstRecompute(*m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleChangePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ivm
