// Golden-output tests for the analyzer's report renderers.
//
// Each .dl program under tests/fixtures/dl/ and examples/dl/ is analyzed
// exactly the way ivm_lint does (ParseProgramUnanalyzed + AnalyzeProgram)
// and rendered in all three formats; the bytes are pinned against
// tests/golden/<name>.{txt,json,sarif}. The renderers are pure functions of
// (report, file), so any diff is a real behavior change — new rules, edited
// messages, reordered diagnostics, or broken escaping.
//
// To update the goldens after an intentional change:
//
//   IVM_REGENERATE_GOLDEN=1 build/tests/lint_golden_test
//
// then review the diff like any other code change.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/report_format.h"
#include "datalog/parser.h"

namespace ivm {
namespace {

namespace fs = std::filesystem;

const char* kSourceDir = IVM_SOURCE_DIR;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool Regenerating() {
  const char* env = std::getenv("IVM_REGENERATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Renders `program_path` (repo-relative) the way ivm_lint does and checks
/// (or regenerates) the goldens for all three formats.
void CheckGoldens(const std::string& rel_program) {
  const fs::path root = kSourceDir;
  const fs::path program_path = root / rel_program;
  const std::string src = ReadFile(program_path);

  AnalysisReport report;
  Result<Program> program = ParseProgramUnanalyzed(src);
  if (!program.ok()) {
    Diagnostic d;
    d.code = DiagCode::kParseError;
    d.severity = DiagSeverity::kError;
    d.message = program.status().message();
    report.Add(std::move(d));
  } else {
    report = AnalyzeProgram(*program);
  }

  const std::string base = program_path.stem().string();
  const struct {
    const char* ext;
    std::string rendered;
  } formats[] = {
      {"txt", RenderReportText(report, rel_program)},
      {"json", RenderReportJson(report, rel_program)},
      {"sarif", RenderReportSarif(report, rel_program)},
  };

  for (const auto& f : formats) {
    const fs::path golden = root / "tests" / "golden" / (base + "." + f.ext);
    if (Regenerating()) {
      std::ofstream out(golden);
      ASSERT_TRUE(out.is_open()) << "cannot write " << golden;
      out << f.rendered;
      continue;
    }
    EXPECT_EQ(f.rendered, ReadFile(golden))
        << "golden mismatch for " << golden
        << "\n(intentional change? IVM_REGENERATE_GOLDEN=1 "
        << "build/tests/lint_golden_test)";
  }
}

TEST(LintGoldenTest, Fixtures) {
  // One fixture per cost/cardinality lint rule (IVM012..IVM017).
  for (const char* name :
       {"wide_join", "nonlinear_recursion", "aggregate_through_recursion",
        "delta_explosion", "inlinable_view", "higher_order_advantage"}) {
    SCOPED_TRACE(name);
    CheckGoldens(std::string("tests/fixtures/dl/") + name + ".dl");
  }
}

TEST(LintGoldenTest, Examples) {
  std::vector<std::string> names;
  for (const auto& entry :
       fs::directory_iterator(fs::path(kSourceDir) / "examples" / "dl")) {
    if (entry.path().extension() == ".dl") {
      names.push_back(entry.path().filename().string());
    }
  }
  ASSERT_FALSE(names.empty());
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    CheckGoldens("examples/dl/" + name);
  }
}

// The SARIF rule catalog is append-only: ids are stable (IVM001..) and in
// enum order. A renumbering would silently invalidate every stored SARIF
// log, so pin the full mapping here, independent of the goldens.
TEST(LintGoldenTest, StableRuleIds) {
  const std::vector<DiagCode>& codes = AllDiagCodes();
  ASSERT_EQ(codes.size(), 17u);
  for (size_t i = 0; i < codes.size(); ++i) {
    char expect[8];
    std::snprintf(expect, sizeof(expect), "IVM%03zu", i + 1);
    EXPECT_STREQ(DiagCodeId(codes[i]), expect);
  }
  EXPECT_STREQ(DiagCodeId(DiagCode::kWideJoin), "IVM012");
  EXPECT_STREQ(DiagCodeId(DiagCode::kNonlinearRecursion), "IVM013");
  EXPECT_STREQ(DiagCodeId(DiagCode::kAggregateThroughRecursion), "IVM014");
  EXPECT_STREQ(DiagCodeId(DiagCode::kDeltaExplosion), "IVM015");
  EXPECT_STREQ(DiagCodeId(DiagCode::kInlinableView), "IVM016");
  EXPECT_STREQ(DiagCodeId(DiagCode::kHigherOrderAdvantage), "IVM017");
}

}  // namespace
}  // namespace ivm
