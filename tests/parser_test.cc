#include "datalog/parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

TEST(ParserTest, HopProgram) {
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).");
  EXPECT_TRUE(p.analyzed());
  EXPECT_EQ(p.num_rules(), 1u);
  EXPECT_EQ(p.rule(0).ToString(), "hop(X, Y) :- link(X, Z) & link(Z, Y).");
  ASSERT_TRUE(p.Lookup("link").ok());
  ASSERT_TRUE(p.Lookup("hop").ok());
  EXPECT_TRUE(p.predicate(p.Lookup("link").value()).is_base);
  EXPECT_FALSE(p.predicate(p.Lookup("hop").value()).is_base);
}

TEST(ParserTest, CommaAndAmpersandBothSeparate) {
  Program p = MustParseProgram(
      "base e(X, Y). t(X, Y) :- e(X, Z), e(Z, Y). s(X, Y) :- e(X, Z) & e(Z, Y).");
  EXPECT_EQ(p.num_rules(), 2u);
}

TEST(ParserTest, ArityDeclarationForm) {
  Program p = MustParseProgram("base link/2. hop(X,Y) :- link(X,Z), link(Z,Y).");
  EXPECT_EQ(p.predicate(p.Lookup("link").value()).arity, 2u);
}

TEST(ParserTest, NegationBothSyntaxes) {
  Program p = MustParseProgram(
      "base e(X, Y). base f(X, Y).\n"
      "a(X, Y) :- e(X, Y), !f(X, Y).\n"
      "b(X, Y) :- e(X, Y), not f(X, Y).");
  EXPECT_EQ(p.rule(0).body[1].kind, Literal::Kind::kNegated);
  EXPECT_EQ(p.rule(1).body[1].kind, Literal::Kind::kNegated);
}

TEST(ParserTest, GroupbyLiteral) {
  Program p = MustParseProgram(
      "base hop(S, D, C).\n"
      "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).");
  const Literal& lit = p.rule(0).body[0];
  EXPECT_EQ(lit.kind, Literal::Kind::kAggregate);
  EXPECT_EQ(lit.agg_func, AggregateFunc::kMin);
  EXPECT_EQ(lit.group_vars.size(), 2u);
  EXPECT_EQ(lit.result_var.var_name(), "M");
}

TEST(ParserTest, CountStar) {
  Program p = MustParseProgram(
      "base e(X, Y). deg(X, N) :- groupby(e(X, Y), [X], N = count(*)).");
  EXPECT_EQ(p.rule(0).body[0].agg_func, AggregateFunc::kCount);
}

TEST(ParserTest, ArithmeticInHead) {
  Program p = MustParseProgram(
      "base link(S, D, C).\n"
      "hop(S, D, C1 + C2) :- link(S, I, C1) & link(I, D, C2).");
  EXPECT_TRUE(p.rule(0).head.terms[2].IsArith());
}

TEST(ParserTest, ComparisonLiterals) {
  Program p = MustParseProgram(
      "base e(X, Y). big(X, Y) :- e(X, Y), Y > 10, X != Y.");
  EXPECT_EQ(p.rule(0).body[1].kind, Literal::Kind::kComparison);
  EXPECT_EQ(p.rule(0).body[1].cmp_op, ComparisonOp::kGt);
  EXPECT_EQ(p.rule(0).body[2].cmp_op, ComparisonOp::kNe);
}

TEST(ParserTest, SymbolsAndLiterals) {
  Program p = MustParseProgram(
      "base e(X, Y). r(X) :- e(X, abc). s(X) :- e(X, 42). t(X) :- e(X, \"q\").");
  EXPECT_EQ(p.rule(0).body[0].atom.terms[1].constant(), Value::Str("abc"));
  EXPECT_EQ(p.rule(1).body[0].atom.terms[1].constant(), Value::Int(42));
  EXPECT_EQ(p.rule(2).body[0].atom.terms[1].constant(), Value::Str("q"));
}

TEST(ParserTest, NegativeNumbers) {
  Program p = MustParseProgram("base e(X). r(X) :- e(X), X > -5.");
  EXPECT_EQ(p.rule(0).body[1].cmp_rhs.constant(), Value::Int(-5));
}

TEST(ParserTest, AnonymousVariable) {
  Program p = MustParseProgram("base e(X, Y). src(X) :- e(X, _).");
  EXPECT_EQ(p.num_rules(), 1u);
  // Two distinct variables: X and the anonymous one.
  EXPECT_EQ(p.num_vars(0), 2);
}

TEST(ParserTest, ErrorsOnFactInProgram) {
  EXPECT_FALSE(ParseProgram("base e(X). e(a).").ok());
}

TEST(ParserTest, ErrorsOnMissingDot) {
  EXPECT_FALSE(ParseProgram("base e(X). r(X) :- e(X)").ok());
}

TEST(ParserTest, ErrorsOnUndeclaredBodyPredicate) {
  auto r = ParseProgram("r(X) :- unknown(X).");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ErrorsOnArityMismatch) {
  EXPECT_FALSE(ParseProgram("base e(X, Y). r(X) :- e(X).").ok());
}

TEST(ParserTest, ErrorsOnRuleForBaseRelation) {
  EXPECT_FALSE(ParseProgram("base e(X). e(X) :- e(X).").ok());
}

TEST(ParserTest, ParseSingleRule) {
  auto rule = ParseRule("p(X) :- q(X, Y), Y > 2.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head.predicate, "p");
  EXPECT_EQ(rule->body.size(), 2u);
}

TEST(ParserTest, ParseGroundFacts) {
  auto facts = ParseGroundFacts("link(a, b). link(b, c). cost(a, b, 3).");
  ASSERT_TRUE(facts.ok());
  ASSERT_EQ(facts->size(), 3u);
  EXPECT_EQ((*facts)[0].first, "link");
  EXPECT_EQ((*facts)[0].second, Tup("a", "b"));
  EXPECT_EQ((*facts)[2].second, Tup("a", "b", 3));
}

TEST(ParserTest, GroundFactsRejectVariables) {
  EXPECT_FALSE(ParseGroundFacts("link(X, b).").ok());
}

TEST(ParserTest, ProgramToStringRoundTrips) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  Program p2 = MustParseProgram(p.ToString());
  EXPECT_EQ(p2.num_rules(), 1u);
}

}  // namespace
}  // namespace ivm
