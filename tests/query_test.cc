#include "core/query.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

std::unique_ptr<ViewManager> MakeHop(Semantics semantics = Semantics::kSet) {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).",
      testing_util::ManagerOptions(Strategy::kCounting, semantics));
  vm.status().CheckOK();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  (*vm)->Initialize(db).CheckOK();
  return std::move(vm).value();
}

TEST(QueryTest, BareBodyOverView) {
  auto vm = MakeHop();
  Relation r = QueryOnce(*vm, "hop(a, X)").value();
  EXPECT_EQ(r.ToString(), "{(\"c\"), (\"e\")}");
}

TEST(QueryTest, JoinViewWithBase) {
  auto vm = MakeHop();
  // Nodes two hops from a that still have an outgoing link.
  Relation r = QueryOnce(*vm, "hop(a, X), link(X, Y)").value();
  EXPECT_TRUE(r.Contains(Tup("c", "h")) || r.empty() || true);
  // With this data, c has no outgoing link and e neither: empty.
  EXPECT_TRUE(r.empty());
}

TEST(QueryTest, FullRuleFormWithNegation) {
  auto vm = MakeHop();
  Relation r =
      QueryOnce(*vm, "ans(X) :- hop(a, X) & !link(a, X).").value();
  EXPECT_EQ(r.ToString(), "{(\"c\"), (\"e\")}");
  Relation r2 = QueryOnce(*vm, "ans(X) :- link(a, X) & !hop(a, X).").value();
  EXPECT_EQ(r2.ToString(), "{(\"b\"), (\"d\")}");
}

TEST(QueryTest, GroundQueryIsBoolean) {
  auto vm = MakeHop();
  Relation yes = QueryOnce(*vm, "link(a, b)").value();
  EXPECT_EQ(yes.size(), 1u);  // the empty tuple: true
  Relation no = QueryOnce(*vm, "link(a, z)").value();
  EXPECT_TRUE(no.empty());
}

TEST(QueryTest, CountsUnderDuplicateSemantics) {
  auto vm = MakeHop(Semantics::kDuplicate);
  Relation r = QueryOnce(*vm, "hop(X, Y)").value();
  EXPECT_EQ(r.Count(Tup("a", "c")), 2);
  // Set semantics flattens.
  auto vm2 = MakeHop(Semantics::kSet);
  Relation r2 = QueryOnce(*vm2, "hop(X, Y)").value();
  EXPECT_EQ(r2.Count(Tup("a", "c")), 1);
}

TEST(QueryTest, AggregateQuery) {
  auto vm = MakeHop();
  Relation r =
      QueryOnce(*vm, "groupby(link(X, Y), [X], N = count(*))").value();
  EXPECT_TRUE(r.Contains(Tup("a", 2)));
  EXPECT_TRUE(r.Contains(Tup("b", 2)));
  EXPECT_TRUE(r.Contains(Tup("d", 1)));
}

TEST(QueryTest, ComparisonAndArithmetic) {
  auto vm = ViewManager::CreateFromText("base n(X). double(X, Y) :- n(X), Y = X * 2.");
  vm.status().CheckOK();
  Database db;
  testing_util::MustLoadFacts(&db, "n(1). n(2). n(3).");
  (*vm)->Initialize(db).CheckOK();
  Relation r = QueryOnce(**vm, "n(X), X > 1, Y = X + 10").value();
  EXPECT_EQ(r.ToString(), "{(2, 12), (3, 13)}");
}

TEST(QueryTest, ReflectsMaintainedState) {
  auto vm = MakeHop();
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  vm->Apply(changes).value();
  Relation r = QueryOnce(*vm, "hop(a, X)").value();
  EXPECT_EQ(r.ToString(), "{(\"c\")}");
}

TEST(QueryTest, ErrorsSurface) {
  auto vm = MakeHop();
  EXPECT_FALSE(QueryOnce(*vm, "unknown(X)").ok());       // unknown predicate
  EXPECT_FALSE(QueryOnce(*vm, "ans(Z) :- hop(a, X).").ok());  // unsafe head
  EXPECT_FALSE(QueryOnce(*vm, "hop(a,").ok());           // parse error
}

}  // namespace
}  // namespace ivm
