// Determinism property test for the parallel delta evaluation engine:
// random programs and random update sequences must produce *identical*
// relations — tuples AND counts — and identical output change sets whether
// maintenance runs serially or on 2, 4, or 8 threads. min_partition_size is
// forced to 1 so even tiny deltas exercise the partition/merge path.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "random_program_gen.h"
#include "test_util.h"
#include "workload/update_gen.h"

namespace ivm {
namespace {

constexpr int kNumNodes = 12;
constexpr int kThreadCounts[] = {2, 4, 8};

ViewManager::Options ParallelOptions(Strategy strategy, Semantics semantics,
                                     int threads) {
  ViewManager::Options options = testing_util::ManagerOptions(strategy,
                                                              semantics);
  options.executor.threads = threads;
  // Partition every Δ-subgoal, however small, so the merge path is always
  // exercised rather than falling back to one-task-per-rule.
  options.executor.min_partition_size = 1;
  return options;
}

std::string ChangeSetToString(const ChangeSet& cs) {
  std::string out;
  for (const auto& [name, delta] : cs.deltas()) {
    out += name + ": " + delta.ToString() + "\n";
  }
  return out;
}

void ExpectManagersIdentical(ViewManager& serial, ViewManager& parallel,
                             const std::string& context) {
  for (PredicateId pred : serial.program().DerivedPredicates()) {
    const std::string& name = serial.program().predicate(pred).name;
    const Relation& expected = *serial.snapshot().Get(name).value();
    const Relation& actual = *parallel.snapshot().Get(name).value();
    // Exact equality — tuples and derivation counts — regardless of
    // semantics: parallel evaluation must not perturb counts even when set
    // semantics would mask them.
    ASSERT_EQ(actual.ToString(), expected.ToString()) << context << " " << name;
  }
}

class ParallelDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

// Random nonrecursive programs under counting and DRed, set and duplicate
// semantics: serial and parallel managers receive identical update streams
// and must stay bit-identical throughout.
TEST_P(ParallelDeterminismTest, RandomProgramsMatchSerial) {
  std::mt19937_64 rng(GetParam() * 104729);
  const std::string program_text = testing_util::RandomProgramText(&rng);
  SCOPED_TRACE(program_text);

  Database db;
  std::uniform_int_distribution<int> node(0, kNumNodes - 1);
  for (const char* name : {"e1", "e2"}) {
    db.CreateRelation(name, 2).CheckOK();
    for (int i = 0; i < 25; ++i) {
      int a = node(rng), b = node(rng);
      if (a != b) db.mutable_relation(name).Set(Tup(a, b), 1);
    }
  }

  for (Strategy strategy : {Strategy::kCounting, Strategy::kDRed}) {
    for (Semantics semantics : {Semantics::kSet, Semantics::kDuplicate}) {
      if (strategy == Strategy::kDRed && semantics == Semantics::kDuplicate) {
        continue;
      }
      auto serial = ViewManager::CreateFromText(
          program_text, testing_util::ManagerOptions(strategy, semantics));
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      IVM_ASSERT_OK((*serial)->Initialize(db));

      std::vector<std::unique_ptr<ViewManager>> parallels;
      for (int threads : kThreadCounts) {
        auto vm = ViewManager::CreateFromText(
            program_text, ParallelOptions(strategy, semantics, threads));
        ASSERT_TRUE(vm.ok()) << vm.status().ToString();
        IVM_ASSERT_OK((*vm)->Initialize(db));
        parallels.push_back(std::move(*vm));
      }

      std::mt19937_64 update_rng(GetParam() * 13 + static_cast<int>(strategy));
      for (int round = 0; round < 4; ++round) {
        ChangeSet batch;
        for (const char* name : {"e1", "e2"}) {
          const Relation& current = *(*serial)->snapshot().Get(name).value();
          for (const Tuple& t : SampleTuples(current, 2, update_rng())) {
            batch.Delete(name, t);
          }
          for (int i = 0; i < 2; ++i) {
            int a = node(update_rng), b = node(update_rng);
            Tuple t = Tup(a, b);
            if (a != b && !current.Contains(t) &&
                !batch.Delta(name).Contains(t)) {
              batch.Insert(name, t);
            }
          }
        }
        auto serial_out = (*serial)->Apply(batch);
        ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();

        for (size_t p = 0; p < parallels.size(); ++p) {
          const std::string context =
              std::string(StrategyName(strategy)) + "/" +
              (semantics == Semantics::kSet ? "set" : "dup") + " threads=" +
              std::to_string(kThreadCounts[p]) + " round " +
              std::to_string(round);
          auto parallel_out = parallels[p]->Apply(batch);
          ASSERT_TRUE(parallel_out.ok())
              << context << ": " << parallel_out.status().ToString();
          // The emitted view deltas must match exactly, not just the final
          // extents — subscribers see the same stream either way.
          ASSERT_EQ(ChangeSetToString(*parallel_out),
                    ChangeSetToString(*serial_out))
              << context;
          ExpectManagersIdentical(**serial, *parallels[p], context);
        }
      }
    }
  }
}

// Recursive programs: transitive closure under DRed (set semantics) and
// recursive counting (duplicate semantics). Deletions drive the
// over-delete / rederive machinery and the recursive-counting worklist, both
// of which batch work across the executor.
TEST_P(ParallelDeterminismTest, RecursiveProgramsMatchSerial) {
  const std::string program_text =
      "base e(X, Y).\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Z) :- t(X, Y) & e(Y, Z).\n";

  std::mt19937_64 rng(GetParam() * 7919);
  Database db;
  std::uniform_int_distribution<int> node(0, 9);
  db.CreateRelation("e", 2).CheckOK();
  // Edges always point upward (a < b) so the graph stays acyclic: recursive
  // counting tracks the number of derivation trees, which is infinite on a
  // cycle (counts would overflow, as the paper's Section 8 warns).
  for (int i = 0; i < 18; ++i) {
    int a = node(rng), b = node(rng);
    if (a < b) db.mutable_relation("e").Set(Tup(a, b), 1);
  }

  struct Case {
    Strategy strategy;
    Semantics semantics;
  };
  for (const Case& c : {Case{Strategy::kDRed, Semantics::kSet},
                        Case{Strategy::kRecursiveCounting,
                             Semantics::kDuplicate}}) {
    auto serial = ViewManager::CreateFromText(
        program_text, testing_util::ManagerOptions(c.strategy, c.semantics));
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    IVM_ASSERT_OK((*serial)->Initialize(db));

    std::vector<std::unique_ptr<ViewManager>> parallels;
    for (int threads : kThreadCounts) {
      auto vm = ViewManager::CreateFromText(
          program_text, ParallelOptions(c.strategy, c.semantics, threads));
      ASSERT_TRUE(vm.ok()) << vm.status().ToString();
      IVM_ASSERT_OK((*vm)->Initialize(db));
      parallels.push_back(std::move(*vm));
    }

    std::mt19937_64 update_rng(GetParam() * 37 +
                               static_cast<int>(c.strategy));
    for (int round = 0; round < 5; ++round) {
      ChangeSet batch;
      const Relation& current = *(*serial)->snapshot().Get("e").value();
      for (const Tuple& t : SampleTuples(current, 2, update_rng())) {
        batch.Delete("e", t);
      }
      for (int i = 0; i < 2; ++i) {
        int a = node(update_rng), b = node(update_rng);
        Tuple t = Tup(a, b);
        if (a < b && !current.Contains(t) && !batch.Delta("e").Contains(t)) {
          batch.Insert("e", t);
        }
      }
      auto serial_out = (*serial)->Apply(batch);
      ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();

      for (size_t p = 0; p < parallels.size(); ++p) {
        const std::string context =
            std::string(StrategyName(c.strategy)) + " threads=" +
            std::to_string(kThreadCounts[p]) + " round " +
            std::to_string(round);
        auto parallel_out = parallels[p]->Apply(batch);
        ASSERT_TRUE(parallel_out.ok())
            << context << ": " << parallel_out.status().ToString();
        ASSERT_EQ(ChangeSetToString(*parallel_out),
                  ChangeSetToString(*serial_out))
            << context;
        ExpectManagersIdentical(**serial, *parallels[p], context);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace ivm
