// Robustness: malformed inputs must produce error Statuses, never crashes,
// and maintainers must stay usable after rejected operations.

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "datalog/parser.h"
#include "sql/sql_translator.h"
#include "test_util.h"

namespace ivm {
namespace {

TEST(RobustnessTest, MalformedDatalogInputsErrorCleanly) {
  const char* kBadPrograms[] = {
      "hop(X",                               // truncated
      "hop(X, Y) :-",                        // missing body
      "hop(X, Y) :- link(X, Y)",             // missing dot
      ":- link(X, Y).",                      // missing head
      "base .",                              // missing name
      "base link(S, D). hop(X, Y) :- link(X).",        // arity mismatch
      "base link(S, D). hop(X, Q) :- link(X, Y).",     // unsafe head
      "base l(X). p(X) :- l(X) & !p(X).",              // unstratified
      "p(X) :- q(X).",                       // undeclared q
      "base l(X). 42(X) :- l(X).",           // numeric predicate
      "base l(X). p(X) :- l(X), X <.",       // dangling comparison
      "base l(X). p(X) :- groupby(l(X), [Y], M = min(X)).",  // group var not in atom
  };
  for (const char* text : kBadPrograms) {
    auto r = ParseProgram(text);
    EXPECT_FALSE(r.ok()) << text;
  }
  // The empty program is valid (no rules, no views).
  EXPECT_TRUE(ParseProgram("").ok());
}

TEST(RobustnessTest, MalformedSqlErrorsCleanly) {
  const char* kBadSql[] = {
      "SELECT",  // not a statement we accept at top level
      "CREATE",
      "CREATE VIEW v AS SELECT FROM t;",
      "CREATE TABLE t(;",
      "CREATE VIEW v AS SELECT x FROM;",
      "INSERT INTO;",
      "INSERT INTO t VALUES;",
      "DELETE t;",
      "UPDATE t WHERE x = 1;",
      "CREATE VIEW v AS SELECT x FROM a UNION;",
  };
  for (const char* text : kBadSql) {
    SqlTranslator tr;
    Status s = tr.AddScript(text);
    EXPECT_FALSE(s.ok()) << text;
  }
}

TEST(RobustnessTest, ManagerSurvivesRejectedApply) {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).").value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  IVM_ASSERT_OK(vm->Initialize(db));

  // Rejected: deleting a missing tuple.
  ChangeSet bad;
  bad.Delete("link", Tup("z", "z"));
  EXPECT_FALSE(vm->Apply(bad).ok());

  // Rejected: touching an unknown relation.
  ChangeSet unknown;
  unknown.Insert("nope", Tup(1));
  EXPECT_FALSE(vm->Apply(unknown).ok());

  // Rejected: touching a view directly.
  ChangeSet view_write;
  view_write.Insert("hop", Tup("x", "y"));
  EXPECT_FALSE(vm->Apply(view_write).ok());

  // The manager still works and its state is unchanged.
  EXPECT_EQ(vm->GetRelation("hop").value()->ToString(), "{(\"a\", \"c\")}");
  ChangeSet good;
  good.Insert("link", Tup("c", "d"));
  ChangeSet out = vm->Apply(good).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("b", "d")), 1);
}

TEST(RobustnessTest, EmptyApplyIsANoop) {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).").value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  IVM_ASSERT_OK(vm->Initialize(db));
  ChangeSet empty;
  ChangeSet out = vm->Apply(empty).value();
  EXPECT_TRUE(out.empty());
}

TEST(RobustnessTest, ViewsOverEmptyBaseRelations) {
  for (Strategy s : {Strategy::kCounting, Strategy::kDRed, Strategy::kRecompute}) {
    auto vm = ViewManager::CreateFromText(
        "base a(X). base b(X).\n"
        "u(X) :- a(X).\n"
        "u(X) :- b(X).\n"
        "only_a(X) :- a(X) & !b(X).\n"
        "n(C) :- groupby(a(X), [], C = count(*)).",
        s).value();
    Database db;
    db.CreateRelation("a", 1).CheckOK();
    db.CreateRelation("b", 1).CheckOK();
    IVM_ASSERT_OK(vm->Initialize(db));
    EXPECT_TRUE(vm->GetRelation("u").value()->empty());
    EXPECT_TRUE(vm->GetRelation("n").value()->empty());
    // First-ever tuple.
    ChangeSet first;
    first.Insert("a", Tup(1));
    ChangeSet out = vm->Apply(first).value();
    EXPECT_EQ(out.Delta("u").Count(Tup(1)), 1) << StrategyName(s);
    EXPECT_EQ(out.Delta("only_a").Count(Tup(1)), 1) << StrategyName(s);
    EXPECT_EQ(out.Delta("n").Count(Tup(1)), 1) << StrategyName(s);
    // And back to empty.
    ChangeSet undo;
    undo.Delete("a", Tup(1));
    ChangeSet out2 = vm->Apply(undo).value();
    EXPECT_EQ(out2.Delta("n").Count(Tup(1)), -1) << StrategyName(s);
    EXPECT_TRUE(vm->GetRelation("u").value()->empty());
  }
}

TEST(RobustnessTest, LongChainDeepRecursionNoStackIssues) {
  auto vm = ViewManager::CreateFromText(
      "base e(X, Y). p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z) & e(Z, Y).",
      Strategy::kDRed).value();
  Database db;
  db.CreateRelation("e", 2).CheckOK();
  const int n = 600;
  for (int i = 0; i < n; ++i) db.mutable_relation("e").Add(Tup(i, i + 1), 1);
  IVM_ASSERT_OK(vm->Initialize(db));
  EXPECT_EQ(vm->GetRelation("p").value()->size(),
            static_cast<size_t>(n) * (n + 1) / 2);
  ChangeSet cut;
  cut.Delete("e", Tup(n / 2, n / 2 + 1));
  ChangeSet out = vm->Apply(cut).value();
  EXPECT_EQ(out.Delta("p").size(),
            static_cast<size_t>(n / 2 + 1) * (n - n / 2));
}

}  // namespace
}  // namespace ivm
