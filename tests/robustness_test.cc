// Robustness: malformed inputs must produce error Statuses, never crashes,
// and maintainers must stay usable after rejected operations.

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "datalog/parser.h"
#include "sql/sql_translator.h"
#include "test_util.h"
#include "txn/failpoint.h"

namespace ivm {
namespace {

TEST(RobustnessTest, MalformedDatalogInputsErrorCleanly) {
  const char* kBadPrograms[] = {
      "hop(X",                               // truncated
      "hop(X, Y) :-",                        // missing body
      "hop(X, Y) :- link(X, Y)",             // missing dot
      ":- link(X, Y).",                      // missing head
      "base .",                              // missing name
      "base link(S, D). hop(X, Y) :- link(X).",        // arity mismatch
      "base link(S, D). hop(X, Q) :- link(X, Y).",     // unsafe head
      "base l(X). p(X) :- l(X) & !p(X).",              // unstratified
      "p(X) :- q(X).",                       // undeclared q
      "base l(X). 42(X) :- l(X).",           // numeric predicate
      "base l(X). p(X) :- l(X), X <.",       // dangling comparison
      "base l(X). p(X) :- groupby(l(X), [Y], M = min(X)).",  // group var not in atom
  };
  for (const char* text : kBadPrograms) {
    auto r = ParseProgram(text);
    EXPECT_FALSE(r.ok()) << text;
  }
  // The empty program is valid (no rules, no views).
  EXPECT_TRUE(ParseProgram("").ok());
}

TEST(RobustnessTest, MalformedSqlErrorsCleanly) {
  const char* kBadSql[] = {
      "SELECT",  // not a statement we accept at top level
      "CREATE",
      "CREATE VIEW v AS SELECT FROM t;",
      "CREATE TABLE t(;",
      "CREATE VIEW v AS SELECT x FROM;",
      "INSERT INTO;",
      "INSERT INTO t VALUES;",
      "DELETE t;",
      "UPDATE t WHERE x = 1;",
      "CREATE VIEW v AS SELECT x FROM a UNION;",
  };
  for (const char* text : kBadSql) {
    SqlTranslator tr;
    Status s = tr.AddScript(text);
    EXPECT_FALSE(s.ok()) << text;
  }
}

TEST(RobustnessTest, ManagerSurvivesRejectedApply) {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).").value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  IVM_ASSERT_OK(vm->Initialize(db));

  // Rejected: deleting a missing tuple.
  ChangeSet bad;
  bad.Delete("link", Tup("z", "z"));
  EXPECT_FALSE(vm->Apply(bad).ok());

  // Rejected: touching an unknown relation.
  ChangeSet unknown;
  unknown.Insert("nope", Tup(1));
  EXPECT_FALSE(vm->Apply(unknown).ok());

  // Rejected: touching a view directly.
  ChangeSet view_write;
  view_write.Insert("hop", Tup("x", "y"));
  EXPECT_FALSE(vm->Apply(view_write).ok());

  // The manager still works and its state is unchanged.
  EXPECT_EQ(vm->snapshot().Get("hop").value()->ToString(), "{(\"a\", \"c\")}");
  ChangeSet good;
  good.Insert("link", Tup("c", "d"));
  ChangeSet out = vm->Apply(good).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("b", "d")), 1);
}

TEST(RobustnessTest, EmptyApplyIsANoop) {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).").value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  IVM_ASSERT_OK(vm->Initialize(db));
  ChangeSet empty;
  ChangeSet out = vm->Apply(empty).value();
  EXPECT_TRUE(out.empty());
}

TEST(RobustnessTest, ViewsOverEmptyBaseRelations) {
  for (Strategy s : {Strategy::kCounting, Strategy::kDRed, Strategy::kRecompute}) {
    auto vm = ViewManager::CreateFromText(
        "base a(X). base b(X).\n"
        "u(X) :- a(X).\n"
        "u(X) :- b(X).\n"
        "only_a(X) :- a(X) & !b(X).\n"
        "n(C) :- groupby(a(X), [], C = count(*)).",
        testing_util::ManagerOptions(s)).value();
    Database db;
    db.CreateRelation("a", 1).CheckOK();
    db.CreateRelation("b", 1).CheckOK();
    IVM_ASSERT_OK(vm->Initialize(db));
    EXPECT_TRUE(vm->snapshot().Get("u").value()->empty());
    EXPECT_TRUE(vm->snapshot().Get("n").value()->empty());
    // First-ever tuple.
    ChangeSet first;
    first.Insert("a", Tup(1));
    ChangeSet out = vm->Apply(first).value();
    EXPECT_EQ(out.Delta("u").Count(Tup(1)), 1) << StrategyName(s);
    EXPECT_EQ(out.Delta("only_a").Count(Tup(1)), 1) << StrategyName(s);
    EXPECT_EQ(out.Delta("n").Count(Tup(1)), 1) << StrategyName(s);
    // And back to empty.
    ChangeSet undo;
    undo.Delete("a", Tup(1));
    ChangeSet out2 = vm->Apply(undo).value();
    EXPECT_EQ(out2.Delta("n").Count(Tup(1)), -1) << StrategyName(s);
    EXPECT_TRUE(vm->snapshot().Get("u").value()->empty());
  }
}

TEST(RobustnessTest, LongChainDeepRecursionNoStackIssues) {
  auto vm = ViewManager::CreateFromText(
      "base e(X, Y). p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z) & e(Z, Y).",
      testing_util::ManagerOptions(Strategy::kDRed)).value();
  Database db;
  db.CreateRelation("e", 2).CheckOK();
  const int n = 600;
  for (int i = 0; i < n; ++i) db.mutable_relation("e").Add(Tup(i, i + 1), 1);
  IVM_ASSERT_OK(vm->Initialize(db));
  EXPECT_EQ(vm->snapshot().Get("p").value()->size(),
            static_cast<size_t>(n) * (n + 1) / 2);
  ChangeSet cut;
  cut.Delete("e", Tup(n / 2, n / 2 + 1));
  ChangeSet out = vm->Apply(cut).value();
  EXPECT_EQ(out.Delta("p").size(),
            static_cast<size_t>(n / 2 + 1) * (n - n / 2));
}

// Full textual state of the named relations — byte-identical fingerprints
// mean the rollback restored every tuple and count exactly.
std::string Fingerprint(ViewManager& vm,
                        std::initializer_list<const char*> names) {
  std::string fp;
  for (const char* name : names) {
    fp += std::string(name) + "=" + vm.snapshot().Get(name).value()->ToString() +
          "\n";
  }
  return fp;
}

TEST(RobustnessTest, ThrowingTriggerRollsBackApply) {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).").value();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  IVM_ASSERT_OK(vm->Initialize(db));
  const std::string before = Fingerprint(*vm, {"link", "hop"});

  int fired = 0;
  ViewManager::Subscription sub =
      vm->Watch("hop", [&](const std::string&, const Relation&) {
        ++fired;
        throw std::runtime_error("active rule exploded");
      });

  ChangeSet changes;
  changes.Insert("link", Tup("c", "d"));
  auto result = vm->Apply(changes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("active rule exploded"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(fired, 1);
  // The trigger observed the delta, but nothing of the Apply survived it —
  // neither the base fold nor the view maintenance.
  EXPECT_EQ(Fingerprint(*vm, {"link", "hop"}), before);
  EXPECT_EQ(vm->epoch(), 0u);

  // A trigger throwing something that is not a std::exception is also
  // contained.
  sub.Unsubscribe();
  sub = vm->Watch("hop", [](const std::string&, const Relation&) {
    throw 42;
  });
  EXPECT_FALSE(vm->Apply(changes).ok());
  EXPECT_EQ(Fingerprint(*vm, {"link", "hop"}), before);

  // After unsubscribing, the identical change set commits.
  sub.Unsubscribe();
  ChangeSet out = vm->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("b", "d")), 1);
  EXPECT_EQ(vm->epoch(), 1u);
}

TEST(RobustnessTest, ThrowingTriggerRollsBackRuleChanges) {
  auto vm = ViewManager::CreateFromText(
                "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).",
                testing_util::ManagerOptions(Strategy::kDRed))
                .value();
  Database db;
  // A 3-cycle, so the tri rule added below derives tuples and its trigger
  // actually fires.
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c). link(c,a).");
  IVM_ASSERT_OK(vm->Initialize(db));
  const size_t num_rules = vm->program().rules().size();
  const std::string before = Fingerprint(*vm, {"link", "hop"});

  ViewManager::Subscription sub =
      vm->Watch("tri", [](const std::string&, const Relation&) {
        throw std::runtime_error("no thanks");
      });
  auto added = vm->AddRuleText(
      "tri(X) :- link(X, Y) & link(Y, Z) & link(Z, X).");
  EXPECT_FALSE(added.ok());
  // The program and the views are exactly as before the failed AddRule.
  EXPECT_EQ(vm->program().rules().size(), num_rules);
  EXPECT_EQ(Fingerprint(*vm, {"link", "hop"}), before);
  EXPECT_FALSE(vm->snapshot().Get("tri").ok());

  sub.Unsubscribe();
  ASSERT_TRUE(vm->AddRuleText(
      "tri(X) :- link(X, Y) & link(Y, Z) & link(Z, X).").ok());
  EXPECT_EQ(vm->program().rules().size(), num_rules + 1);
}

// Mid-maintenance failure for every strategy: kill the maintainer at a
// failpoint on its own path and verify the manager rolls back to its exact
// pre-call state and stays usable. Needs -DIVM_FAILPOINTS=ON (see
// tools/run_fault_matrix.sh); skipped otherwise.
struct StrategyFailpoint {
  Strategy strategy;
  const char* failpoint;
};

class MidMaintenanceFailureTest
    : public ::testing::TestWithParam<StrategyFailpoint> {};

TEST_P(MidMaintenanceFailureTest, FailedApplyLeavesStateIdentical) {
  if (!FailpointRegistry::CompiledIn()) {
    GTEST_SKIP() << "library built without -DIVM_FAILPOINTS=ON";
  }
  auto& reg = FailpointRegistry::Instance();
  reg.DisarmAll();

  auto vm = ViewManager::CreateFromText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y). "
      "tri(X) :- link(X, Y) & link(Y, Z) & link(Z, X).",
      testing_util::ManagerOptions(
          GetParam().strategy,
          GetParam().strategy == Strategy::kRecursiveCounting
              ? Semantics::kDuplicate
              : Semantics::kSet)).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(c,a). link(c,d).");
  IVM_ASSERT_OK(vm->Initialize(db));
  const std::string before = Fingerprint(*vm, {"link", "hop", "tri"});

  ChangeSet changes;
  changes.Delete("link", Tup("b", "c"));
  changes.Insert("link", Tup("a", "c"));

  reg.ArmOnNthHit(GetParam().failpoint, 1);
  auto result = vm->Apply(changes);
  reg.DisarmAll();
  ASSERT_FALSE(result.ok())
      << GetParam().failpoint << " never fired for "
      << StrategyName(GetParam().strategy);
  EXPECT_EQ(Fingerprint(*vm, {"link", "hop", "tri"}), before);
  EXPECT_EQ(vm->epoch(), 0u);

  // Not wedged: the very same change set commits once the fault is gone.
  ASSERT_TRUE(vm->Apply(changes).ok());
  EXPECT_EQ(vm->epoch(), 1u);
  EXPECT_NE(Fingerprint(*vm, {"link", "hop", "tri"}), before);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, MidMaintenanceFailureTest,
    ::testing::Values(
        StrategyFailpoint{Strategy::kCounting, "counting.stratum.begin"},
        StrategyFailpoint{Strategy::kCounting, "counting.fold.views"},
        StrategyFailpoint{Strategy::kDRed, "dred.commit.base"},
        StrategyFailpoint{Strategy::kDRed, "dred.commit.stratum"},
        StrategyFailpoint{Strategy::kPF, "pf.fragment"},
        StrategyFailpoint{Strategy::kRecursiveCounting, "rc.worklist.step"},
        StrategyFailpoint{Strategy::kRecompute, "recompute.reevaluate"},
        StrategyFailpoint{Strategy::kCounting, "viewmanager.commit"},
        StrategyFailpoint{Strategy::kDRed, "viewmanager.commit"}),
    [](const ::testing::TestParamInfo<StrategyFailpoint>& info) {
      std::string name = std::string(StrategyName(info.param.strategy)) + "_" +
                         info.param.failpoint;
      for (char& c : name) {
        if (c == '.' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ivm
