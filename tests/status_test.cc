#include "common/status.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace ivm {
namespace {

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::OK().ok());
  Status e = Status::InvalidArgument("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.message(), "bad");
  EXPECT_EQ(e.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, AllCodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  IVM_RETURN_IF_ERROR(Succeeds());
  if (fail) IVM_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

Result<int> ProduceInt(bool fail) {
  if (fail) return Status::InvalidArgument("no int");
  return 7;
}

Result<int> UseAssignOrReturn(bool fail) {
  IVM_ASSIGN_OR_RETURN(int v, ProduceInt(fail));
  return v + 1;
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturn) {
  EXPECT_EQ(UseAssignOrReturn(false).value(), 8);
  EXPECT_EQ(UseAssignOrReturn(true).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, JoinSplitStrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(SplitAndTrim(" a , b ,, c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(AsciiLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

}  // namespace
}  // namespace ivm
