#ifndef IVM_TESTS_TEST_UTIL_H_
#define IVM_TESTS_TEST_UTIL_H_

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/change_set.h"
#include "core/view_manager.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace ivm {
namespace testing_util {

/// gtest helpers for Status/Result.
#define IVM_EXPECT_OK(expr)                              \
  do {                                                   \
    const ::ivm::Status ivm_test_status_ = (expr);       \
    EXPECT_TRUE(ivm_test_status_.ok())                   \
        << "status: " << ivm_test_status_.ToString();    \
  } while (false)

#define IVM_ASSERT_OK(expr)                              \
  do {                                                   \
    const ::ivm::Status ivm_test_status_ = (expr);       \
    ASSERT_TRUE(ivm_test_status_.ok())                   \
        << "status: " << ivm_test_status_.ToString();    \
  } while (false)

/// Builds ViewManager::Options for the common strategy/semantics pair (the
/// retired positional Create(strategy, semantics) surface).
inline ViewManager::Options ManagerOptions(
    Strategy strategy, Semantics semantics = Semantics::kSet) {
  ViewManager::Options options;
  options.strategy = strategy;
  options.semantics = semantics;
  return options;
}

/// Parses a program; fails the test on error.
inline Program MustParseProgram(std::string_view src) {
  auto result = ParseProgram(src);
  if (!result.ok()) {
    ADD_FAILURE() << "parse failed: " << result.status().ToString();
    return Program();
  }
  return std::move(result).value();
}

/// Populates `db` from ground facts text: "link(a,b). link(b,c)." — creating
/// relations on demand. Symbols are strings, numbers are ints/doubles.
inline void MustLoadFacts(Database* db, std::string_view facts) {
  auto parsed = ParseGroundFacts(facts);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const auto& [name, tuple] : parsed.value()) {
    if (!db->Has(name)) {
      ASSERT_TRUE(db->CreateRelation(name, tuple.size()).ok());
    }
    db->mutable_relation(name).Add(tuple, 1);
  }
}

/// Builds a counted relation from facts text plus explicit counts, e.g.
/// MustMakeRelation("hop", 2, "hop(a,c). hop(a,c). hop(d,h).") gives
/// {(a,c):2, (d,h):1}.
inline Relation MustMakeRelation(const std::string& name, size_t arity,
                                 std::string_view facts) {
  Relation rel(name, arity);
  auto parsed = ParseGroundFacts(facts);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (parsed.ok()) {
    for (const auto& [fact_name, tuple] : parsed.value()) {
      EXPECT_EQ(fact_name, name);
      rel.Add(tuple, 1);
    }
  }
  return rel;
}

/// Asserts two relations hold the same tuples with the same counts.
inline void ExpectRelationEq(const Relation& actual, const Relation& expected) {
  EXPECT_EQ(actual.ToString(), expected.ToString());
}

/// Asserts set-level equality (counts ignored).
inline void ExpectSameSet(const Relation& actual, const Relation& expected) {
  EXPECT_TRUE(actual.SameSet(expected))
      << "actual:   " << actual.ToString() << "\n"
      << "expected: " << expected.ToString();
}

}  // namespace testing_util
}  // namespace ivm

#endif  // IVM_TESTS_TEST_UTIL_H_
