#include "storage/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  IVM_EXPECT_OK(db.CreateRelation("link", 2));
  EXPECT_TRUE(db.Has("link"));
  EXPECT_FALSE(db.Has("hop"));
  EXPECT_EQ(db.relation("link").arity(), 2u);
  EXPECT_FALSE(db.Get("hop").ok());
}

TEST(DatabaseTest, DuplicateCreateFails) {
  Database db;
  IVM_EXPECT_OK(db.CreateRelation("r", 1));
  Status s = db.CreateRelation("r", 1);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, ApplyDeltaInsertsAndDeletes) {
  Database db;
  IVM_EXPECT_OK(db.CreateRelation("r", 1));
  db.mutable_relation("r").Add(Tup(1), 2);
  Relation delta("Δr", 1);
  delta.Add(Tup(1), -1);
  delta.Add(Tup(2), 3);
  IVM_EXPECT_OK(db.ApplyDelta("r", delta));
  EXPECT_EQ(db.relation("r").Count(Tup(1)), 1);
  EXPECT_EQ(db.relation("r").Count(Tup(2)), 3);
}

TEST(DatabaseTest, ApplyDeltaRejectsOverDeletion) {
  // The paper's precondition: deleted tuples must be a sub-multiset of the
  // stored database (Lemma 4.1).
  Database db;
  IVM_EXPECT_OK(db.CreateRelation("r", 1));
  db.mutable_relation("r").Add(Tup(1), 1);
  Relation delta("Δr", 1);
  delta.Add(Tup(1), -2);
  Status s = db.ApplyDelta("r", delta);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // And the store is untouched.
  EXPECT_EQ(db.relation("r").Count(Tup(1)), 1);
}

TEST(DatabaseTest, RelationNamesSorted) {
  Database db;
  IVM_EXPECT_OK(db.CreateRelation("b", 1));
  IVM_EXPECT_OK(db.CreateRelation("a", 1));
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace ivm
