// Property tests for the open-addressing FlatHashMap that backs CountMap and
// the index buckets: randomized op-for-op cross-checks against
// std::unordered_map (insert/erase/update streams, negative counts, rehash
// boundaries), the node-pointer-stability contract that Index and the undo
// log rely on, and the tombstone-purging same-capacity rehash. Also the
// value-interning round trip: checkpoint → Recover must be byte-identical
// for NUL/escape-heavy strings even though live Values store pool handles.

#include "common/flat_hash.h"

#include <cstdint>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/tuple.h"
#include "core/view_manager.h"
#include "storage/intern.h"
#include "test_util.h"

namespace ivm {
namespace {

namespace fs = std::filesystem;

struct Int64Hash {
  size_t operator()(int64_t v) const { return std::hash<int64_t>{}(v); }
};

using FlatCounts = FlatHashMap<int64_t, int64_t, Int64Hash>;
using StdCounts = std::unordered_map<int64_t, int64_t>;

void ExpectSameContents(const FlatCounts& flat, const StdCounts& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto it = flat.find(k);
    ASSERT_NE(it, flat.end()) << "missing key " << k;
    EXPECT_EQ(it->second, v) << "key " << k;
  }
  size_t seen = 0;
  for (const auto& [k, v] : flat) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << "phantom key " << k;
    EXPECT_EQ(it->second, v);
    ++seen;
  }
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatHashMapTest, RandomizedOpStreamMatchesUnorderedMap) {
  // A CountMap-shaped workload: counts go up and down (negative counts are
  // legal Z-relation states), keys are drawn from a small domain so the
  // table sees heavy collision chains, erase keeps tombstones in play, and
  // the volume forces several growth rehashes.
  std::mt19937_64 rng(20260806);
  FlatCounts flat;
  StdCounts ref;
  std::uniform_int_distribution<int64_t> key_dist(0, 799);
  std::uniform_int_distribution<int64_t> delta_dist(-3, 3);
  std::uniform_int_distribution<int> op_dist(0, 9);
  for (int step = 0; step < 20000; ++step) {
    const int64_t k = key_dist(rng);
    switch (op_dist(rng)) {
      case 0:
      case 1: {  // erase
        EXPECT_EQ(flat.erase(k), ref.erase(k));
        break;
      }
      case 2: {  // find / count
        EXPECT_EQ(flat.count(k), ref.count(k));
        auto fit = flat.find(k);
        auto rit = ref.find(k);
        EXPECT_EQ(fit == flat.end(), rit == ref.end());
        if (fit != flat.end()) {
          EXPECT_EQ(fit->second, rit->second);
        }
        break;
      }
      case 3: {  // try_emplace (must not clobber an existing value)
        auto [fit, finserted] = flat.try_emplace(k, int64_t{7});
        auto [rit, rinserted] = ref.try_emplace(k, int64_t{7});
        EXPECT_EQ(finserted, rinserted);
        EXPECT_EQ(fit->second, rit->second);
        break;
      }
      default: {  // counted update through operator[]
        const int64_t d = delta_dist(rng);
        flat[k] += d;
        ref[k] += d;
        if (ref[k] == 0 && (step % 2) == 0) {
          flat.erase(k);
          ref.erase(k);
        }
        break;
      }
    }
    if (step % 2500 == 0) ExpectSameContents(flat, ref);
  }
  ExpectSameContents(flat, ref);
  flat.clear();
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.find(3), flat.end());
}

TEST(FlatHashMapTest, TupleKeysAcrossRehashBoundaries) {
  // Insert exactly past each power-of-two load threshold so growth happens
  // mid-stream; Tuple keys exercise the memoized-hash path end to end.
  FlatHashMap<Tuple, int64_t, TupleHash> flat;
  std::unordered_map<Tuple, int64_t, TupleHash> ref;
  for (int i = 0; i < 3000; ++i) {
    Tuple t = Tup(i % 50, "k" + std::to_string(i), i);
    flat[t] += i % 7 - 3;
    ref[t] += i % 7 - 3;
  }
  ASSERT_EQ(flat.size(), ref.size());
  for (const auto& [t, c] : ref) {
    auto it = flat.find(t);
    ASSERT_NE(it, flat.end()) << t.ToString();
    EXPECT_EQ(it->second, c);
  }
}

TEST(FlatHashMapTest, NodePointersSurviveRehashAndUnrelatedErase) {
  // Index holds `const Tuple*` into CountMap entries and the undo log holds
  // value pointers; both require node stability under growth and under
  // erasure of *other* keys.
  FlatCounts flat;
  std::vector<const int64_t*> keys;
  std::vector<int64_t*> vals;
  for (int64_t i = 0; i < 64; ++i) {
    auto [it, inserted] = flat.try_emplace(i, i * 10);
    ASSERT_TRUE(inserted);
    keys.push_back(&it->first);
    vals.push_back(&it->second);
  }
  // Force several rehashes.
  for (int64_t i = 64; i < 5000; ++i) flat.try_emplace(i, i);
  for (int64_t i = 0; i < 64; ++i) {
    auto it = flat.find(i);
    ASSERT_NE(it, flat.end());
    EXPECT_EQ(&it->first, keys[i]) << "key node moved on rehash";
    EXPECT_EQ(&it->second, vals[i]) << "value node moved on rehash";
    EXPECT_EQ(*vals[i], i * 10);
  }
  // Erase everything else; survivors must not move.
  for (int64_t i = 64; i < 5000; ++i) flat.erase(i);
  EXPECT_EQ(flat.size(), 64u);
  for (int64_t i = 0; i < 64; ++i) {
    auto it = flat.find(i);
    ASSERT_NE(it, flat.end());
    EXPECT_EQ(&it->first, keys[i]) << "key node moved on erase";
  }
}

TEST(FlatHashMapTest, SameCapacityRehashPurgesTombstones) {
  // Steady-state churn at constant size: every insert+erase pair leaves a
  // tombstone, so the table must eventually rehash in place (not grow) and
  // lookups must stay correct throughout.
  FlatCounts flat;
  for (int64_t i = 0; i < 20; ++i) flat.try_emplace(i, i);
  for (int64_t round = 0; round < 10000; ++round) {
    const int64_t k = 1000 + round;
    flat.try_emplace(k, round);
    auto it = flat.find(k);
    ASSERT_NE(it, flat.end());
    flat.erase(it);
    ASSERT_EQ(flat.size(), 20u) << "round " << round;
  }
  for (int64_t i = 0; i < 20; ++i) {
    auto it = flat.find(i);
    ASSERT_NE(it, flat.end());
    EXPECT_EQ(it->second, i);
  }
}

TEST(FlatHashMapTest, EraseByIteratorDrainsWhileIterating) {
  FlatCounts flat;
  for (int64_t i = 0; i < 333; ++i) flat.try_emplace(i, i);
  std::set<int64_t> drained;
  for (auto it = flat.begin(); it != flat.end();) {
    drained.insert(it->first);
    it = flat.erase(it);
  }
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(drained.size(), 333u);
}

TEST(FlatHashMapTest, CopyMoveAndEquality) {
  FlatCounts a;
  for (int64_t i = 0; i < 100; ++i) a[i] = i - 50;  // negative counts too
  FlatCounts b = a;
  EXPECT_TRUE(a == b);
  b[7] += 1;
  EXPECT_FALSE(a == b);
  b[7] -= 1;
  EXPECT_TRUE(a == b);
  // Insertion order must not matter for equality.
  FlatCounts c;
  for (int64_t i = 99; i >= 0; --i) c[i] = i - 50;
  EXPECT_TRUE(a == c);
  FlatCounts moved = std::move(b);
  EXPECT_TRUE(moved == a);
  ASSERT_NE(moved.find(42), moved.end());
  EXPECT_EQ(moved.find(42)->second, -8);
}

TEST(FlatHashMapTest, ReserveAvoidsIntermediateStates) {
  FlatCounts flat;
  flat.reserve(1000);
  for (int64_t i = 0; i < 1000; ++i) flat.try_emplace(i, i);
  EXPECT_EQ(flat.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_NE(flat.find(i), flat.end());
  }
}

// ---------------------------------------------------------------------------
// Value interning.
// ---------------------------------------------------------------------------

TEST(InternPoolTest, DedupesAndKeepsStableReferences) {
  InternPool pool;
  auto a = pool.Intern("shared");
  auto b = pool.Intern("shared");
  EXPECT_EQ(a, b);
  const std::string* addr = &pool.str(a);
  // Force many more entries (spanning several storage blocks); the first
  // entry must not move.
  for (int i = 0; i < 10000; ++i) pool.Intern("s" + std::to_string(i));
  EXPECT_EQ(&pool.str(a), addr);
  EXPECT_EQ(pool.str(a), "shared");
}

TEST(InternPoolTest, HandlesCompareAsStringsThroughValue) {
  // Equal content ⇒ same handle ⇒ Value equality is a handle compare; the
  // pool must make that hold for awkward bytes too.
  std::string nul("a");
  nul += '\0';
  nul += "b";
  Value v1 = Value::Str(nul);
  Value v2 = Value::Str(std::string(nul));
  EXPECT_TRUE(v1 == v2);
  EXPECT_EQ(v1.Hash(), v2.Hash());
  EXPECT_EQ(v1.string_value(), nul);
  EXPECT_FALSE(v1 == Value::Str("a"));
}

TEST(InternRoundTripTest, CheckpointRecoverIsByteIdenticalForHostileStrings) {
  // Live Values hold pool handles; durability must serialize the *strings*
  // and recovery must re-intern them such that the recomputed views compare
  // equal to the checkpointed ones (Recover's integrity check does exactly
  // this comparison, so a successful Recover is the assertion).
  fs::path dir_path =
      fs::path(::testing::TempDir()) / "ivm_intern_round_trip";
  fs::remove_all(dir_path);
  fs::create_directories(dir_path);
  const std::string dir = dir_path.string();

  ViewManager::Options options;
  options.strategy = Strategy::kCounting;
  options.semantics = Semantics::kSet;
  auto vm = ViewManager::CreateFromText(
                "base link(S, D).\n"
                "hop(X, Y) :- link(X, Z) & link(Z, Y).",
                options)
                .value();
  Database db;
  IVM_ASSERT_OK(db.CreateRelation("link", 2));
  std::string nul("nul");
  nul += '\0';
  nul += "byte";
  Relation& link = db.mutable_relation("link");
  link.Add(Tup(nul, std::string("he said \"hi\"")), 1);
  link.Add(Tup(std::string("he said \"hi\""), std::string("a,b\ncr\rlf")), 1);
  link.Add(Tup(std::string("a,b\ncr\rlf"), std::string("back\\slash")), 1);
  link.Add(Tup("42", 0.1), 1);
  IVM_ASSERT_OK(vm->Initialize(db));
  IVM_ASSERT_OK(vm->EnableDurability(dir));

  // One WAL-logged batch with more hostile strings, then a checkpoint.
  ChangeSet changes;
  changes.Insert("link", Tup(std::string("back\\slash"), nul));
  ASSERT_TRUE(vm->Apply(changes).ok());
  IVM_ASSERT_OK(vm->Checkpoint());
  // And a WAL tail past the checkpoint.
  ChangeSet tail;
  tail.Insert("link", Tup(nul, std::string("")));
  ASSERT_TRUE(vm->Apply(tail).ok());

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const Relation* got = (*recovered)->snapshot().Get("hop").value();
  const Relation* want = vm->snapshot().Get("hop").value();
  EXPECT_TRUE(*got == *want);
  const Relation* got_base = (*recovered)->snapshot().Get("link").value();
  EXPECT_TRUE(*got_base == *vm->snapshot().Get("link").value());
  fs::remove_all(dir_path);
}

}  // namespace
}  // namespace ivm
