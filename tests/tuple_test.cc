#include "common/tuple.h"

#include <gtest/gtest.h>

namespace ivm {
namespace {

TEST(TupleTest, TupHelperBuildsTypedValues) {
  Tuple t = Tup(1, "a", 2.5);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], Value::Int(1));
  EXPECT_EQ(t[1], Value::Str("a"));
  EXPECT_EQ(t[2], Value::Real(2.5));
}

TEST(TupleTest, EqualityAndHash) {
  EXPECT_EQ(Tup("a", "b"), Tup("a", "b"));
  EXPECT_NE(Tup("a", "b"), Tup("b", "a"));
  EXPECT_NE(Tup(1), Tup(1, 1));
  EXPECT_EQ(Tup(1, 2).Hash(), Tup(1, 2).Hash());
  EXPECT_NE(Tup(1, 2).Hash(), Tup(2, 1).Hash());
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT(Tup("a", "b"), Tup("a", "c"));
  EXPECT_LT(Tup("a"), Tup("a", "a"));
  EXPECT_LT(Tup(1, 9), Tup(2, 0));
}

TEST(TupleTest, Project) {
  Tuple t = Tup("x", "y", "z");
  EXPECT_EQ(t.Project({2, 0}), Tup("z", "x"));
  EXPECT_EQ(t.Project({}), Tuple());
  EXPECT_EQ(t.Project({1, 1}), Tup("y", "y"));
}

TEST(TupleTest, AppendAndToString) {
  Tuple t;
  t.Append(Value::Int(1));
  t.Append(Value::Str("q"));
  EXPECT_EQ(t.ToString(), "(1, \"q\")");
  EXPECT_EQ(Tuple().ToString(), "()");
}

}  // namespace
}  // namespace ivm
