// The crash-recovery property test (requires -DIVM_FAILPOINTS=ON; skipped
// otherwise — run via tools/run_fault_matrix.sh). For every strategy and
// every failpoint in the catalogue, on randomized graphs and update batches:
//
//   1. A mutation killed at the failpoint must leave the in-memory manager
//      byte-identical to its pre-call state (atomicity), and
//   2. ViewManager::Recover() on the durable directory must rebuild exactly
//      the committed state, whose views match a full-recompute ground truth
//      (durability).

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "test_util.h"
#include "txn/failpoint.h"
#include "workload/graph_gen.h"
#include "workload/update_gen.h"

namespace ivm {
namespace {

using ::ivm::testing_util::MustParseProgram;

namespace fs = std::filesystem;

// Nonrecursive so all five strategies accept it; two views with a join and a
// triangle so every stratum/fold/fragment failpoint actually executes.
constexpr const char* kProgram =
    "base link(S, D). "
    "hop(X, Y) :- link(X, Z) & link(Z, Y). "
    "tri(X) :- link(X, Y) & link(Y, Z) & link(Z, X).";

const std::vector<std::string> kRelations = {"link", "hop", "tri"};

constexpr int kNumNodes = 9;
constexpr int kNumEdges = 22;

std::string FreshDir(const std::string& name) {
  fs::path p = fs::path(::testing::TempDir()) / ("ivm_prop_" + name);
  fs::remove_all(p);
  return p.string();
}

Database MakeBase(uint64_t seed) {
  Database db;
  db.CreateRelation("link", 2).CheckOK();
  FillEdgeRelation(RandomGraph(kNumNodes, kNumEdges, seed),
                   &db.mutable_relation("link"));
  return db;
}

std::unique_ptr<ViewManager> MakeManager(Strategy strategy, uint64_t seed) {
  const Semantics semantics = strategy == Strategy::kRecursiveCounting
                                  ? Semantics::kDuplicate
                                  : Semantics::kSet;
  auto manager =
      ViewManager::Create(MustParseProgram(kProgram),
                          testing_util::ManagerOptions(strategy, semantics));
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  IVM_EXPECT_OK((*manager)->Initialize(MakeBase(seed)));
  return std::move(*manager);
}

// Full textual state of base + views: byte-identical fingerprints mean
// byte-identical relations (ToString renders sorted tuples with counts).
std::string Fingerprint(ViewManager& m) {
  std::string fp;
  for (const auto& name : kRelations) {
    auto rel = m.snapshot().Get(name);
    if (!rel.ok()) {
      ADD_FAILURE() << name << ": " << rel.status().ToString();
      return fp;
    }
    fp += name + "=" + (*rel)->ToString() + "\n";
  }
  return fp;
}

// Ground truth: rebuild the views from scratch (RecomputeMaintainer) over
// the manager's current base snapshot; the maintained views must hold the
// same tuple sets.
void ExpectMatchesRecomputeGroundTruth(ViewManager& m, const std::string& ctx) {
  auto base = m.snapshot().Get("link");
  ASSERT_TRUE(base.ok()) << ctx;
  Database db;
  db.CreateRelation("link", 2).CheckOK();
  for (const auto& [tuple, count] : (*base)->tuples()) {
    db.mutable_relation("link").Add(tuple, count);
  }
  auto oracle =
      ViewManager::Create(MustParseProgram(kProgram),
                          testing_util::ManagerOptions(Strategy::kRecompute));
  ASSERT_TRUE(oracle.ok());
  IVM_ASSERT_OK((*oracle)->Initialize(db));
  for (const auto& view : {"hop", "tri"}) {
    auto got = m.snapshot().Get(view);
    auto want = (*oracle)->snapshot().Get(view);
    ASSERT_TRUE(got.ok() && want.ok()) << ctx;
    EXPECT_TRUE((*got)->SameSet(**want))
        << ctx << " view " << view << "\n  maintained: " << (*got)->ToString()
        << "\n  recomputed: " << (*want)->ToString();
  }
}

const std::vector<Strategy> kStrategies = {
    Strategy::kCounting, Strategy::kDRed, Strategy::kPF,
    Strategy::kRecursiveCounting, Strategy::kRecompute};

// Kill-at-every-failpoint: 5 strategies x 18 catalogue sites x 2 seeds =
// 180 combos, each exercising rollback and (where the site is on the
// strategy's path) crash recovery.
TEST(RecoveryPropertyTest, KillAtEveryFailpointRollsBackAndRecovers) {
  if (!FailpointRegistry::CompiledIn()) {
    GTEST_SKIP() << "library built without -DIVM_FAILPOINTS=ON";
  }
  auto& reg = FailpointRegistry::Instance();
  int combos = 0;
  int kills = 0;
  for (Strategy strategy : kStrategies) {
    for (const std::string& fp : kFailpointCatalogue) {
      for (uint64_t seed : {11u, 47u}) {
        SCOPED_TRACE(std::string(StrategyName(strategy)) + " x " + fp +
                     " x seed=" + std::to_string(seed));
        ++combos;
        reg.DisarmAll();

        const std::string dir =
            FreshDir(std::string(StrategyName(strategy)) + "_" + fp + "_" +
                     std::to_string(seed));
        auto live = MakeManager(strategy, seed);
        IVM_ASSERT_OK(live->EnableDurability(dir));

        // One committed batch so the WAL holds a record before the kill.
        auto link = live->snapshot().Get("link");
        ASSERT_TRUE(link.ok());
        ASSERT_TRUE(live->Apply(MakeMixedEdgeBatch("link", **link, kNumNodes,
                                                   2, 3, seed * 31 + 1))
                        .ok());

        const std::string committed = Fingerprint(*live);
        const uint64_t committed_epoch = live->epoch();

        // Arm the failpoint and attempt a second batch. Whether it fires
        // depends on whether this strategy's path executes the site.
        link = live->snapshot().Get("link");
        ASSERT_TRUE(link.ok());
        const ChangeSet doomed = MakeMixedEdgeBatch(
            "link", **link, kNumNodes, 2, 3, seed * 31 + 2);
        reg.ArmOnNthHit(fp, 1);
        auto result = live->Apply(doomed);
        reg.DisarmAll();

        if (!result.ok()) {
          ++kills;
          // Atomicity: the failed Apply left no trace in memory...
          EXPECT_EQ(Fingerprint(*live), committed);
          EXPECT_EQ(live->epoch(), committed_epoch);
          // ...and no committed record on disk: recovery lands on the
          // pre-kill state.
          auto recovered = ViewManager::Recover(dir);
          ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
          EXPECT_EQ(Fingerprint(**recovered), committed);
          EXPECT_EQ((*recovered)->epoch(), committed_epoch);
          ExpectMatchesRecomputeGroundTruth(**recovered, "post-kill recovery");
          // The rolled-back manager is not wedged: the same batch commits
          // once the fault clears, and both replicas agree.
          ASSERT_TRUE(live->Apply(doomed).ok());
          ASSERT_TRUE((*recovered)->Apply(doomed).ok());
          EXPECT_EQ(Fingerprint(*live), Fingerprint(**recovered));
        } else {
          // Site not on this path (or fired as a non-fatal torn write):
          // durability must still hold for the committed batch.
          auto recovered = ViewManager::Recover(dir);
          ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
          EXPECT_EQ(Fingerprint(**recovered), Fingerprint(*live));
        }
        ExpectMatchesRecomputeGroundTruth(*live, "live after combo");
        fs::remove_all(dir);
      }
    }
  }
  EXPECT_GE(combos, 100) << "acceptance: at least 100 kill combos";
  // Sanity: a healthy share of combos actually killed the mutation (every
  // maintainer path is instrumented); guards against silently compiling the
  // failpoints out.
  EXPECT_GE(kills, combos / 5);
}

// Probabilistic soak: random seeded faults across a longer update sequence,
// recovering after every failed batch.
TEST(RecoveryPropertyTest, RandomFaultSoak) {
  if (!FailpointRegistry::CompiledIn()) {
    GTEST_SKIP() << "library built without -DIVM_FAILPOINTS=ON";
  }
  auto& reg = FailpointRegistry::Instance();
  for (Strategy strategy : kStrategies) {
    SCOPED_TRACE(StrategyName(strategy));
    reg.DisarmAll();
    const std::string dir =
        FreshDir(std::string("soak_") + StrategyName(strategy));
    auto live = MakeManager(strategy, /*seed=*/5);
    IVM_ASSERT_OK(live->EnableDurability(dir));

    for (uint64_t step = 0; step < 12; ++step) {
      for (const std::string& fp : kFailpointCatalogue) {
        reg.ArmWithProbability(fp, 0.05, /*seed=*/step * 131 + 7);
      }
      auto link = live->snapshot().Get("link");
      ASSERT_TRUE(link.ok());
      const ChangeSet batch =
          MakeMixedEdgeBatch("link", **link, kNumNodes, 1, 2, step * 17 + 3);
      const std::string before = Fingerprint(*live);
      auto result = live->Apply(batch);
      reg.DisarmAll();
      if (!result.ok()) {
        EXPECT_EQ(Fingerprint(*live), before);
        auto recovered = ViewManager::Recover(dir);
        ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
        EXPECT_EQ(Fingerprint(**recovered), before);
      }
      if (step == 6) IVM_ASSERT_OK(live->Checkpoint());
    }
    auto recovered = ViewManager::Recover(dir);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(Fingerprint(**recovered), Fingerprint(*live));
    ExpectMatchesRecomputeGroundTruth(**recovered, "soak end");
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace ivm
