// Checkpoint snapshots: write/read round trips (including counted relations
// with awkward values), the staged-swap crash contract (checkpoint.old
// fallback), and error reporting for missing or incomplete snapshots.

#include "txn/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path p = fs::path(::testing::TempDir()) / ("ivm_ckpt_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

CheckpointData SampleData() {
  CheckpointData data;
  data.epoch = 7;
  data.strategy = "counting";
  data.semantics = "set";
  data.program_text = "base link/2.\nhop(X, Y) :- link(X, Z) & link(Z, Y).\n";
  Relation link("link", 2);
  link.Add(Tup(1, 2), 1);
  link.Add(Tup("x", "y"), 3);
  // Values that stress the CSV layer: number-like strings, doubles needing
  // shortest-round-trip formatting, quotes and commas.
  link.Add(Tup("42", 0.1), 2);
  link.Add(Tup("he said \"hi\"", "a,b"), 1);
  // Control characters, backslashes, integral doubles, and Null are all
  // legal Value data the WAL encodes; the checkpoint must round-trip them
  // with their kinds intact or recovery loses committed data.
  link.Add(Tup(std::string("line1\nline2"), std::string("cr\rlf")), 1);
  std::string nul("nul");
  nul += '\0';
  nul += "byte";
  link.Add(Tup(nul, std::string("back\\slash")), 2);
  link.Add(Tup(2.0, int64_t{2}), 1);
  link.Add(Tuple(std::vector<Value>{Value::Null(), Value::Str("")}), 1);
  data.base.emplace("link", std::move(link));
  Relation hop("hop", 2);
  hop.Add(Tup(1, 3), 4);
  data.views.emplace("hop", std::move(hop));
  Relation empty("lonely", 1);
  data.views.emplace("lonely", std::move(empty));
  return data;
}

void ExpectDataEq(const CheckpointData& got, const CheckpointData& want) {
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.strategy, want.strategy);
  EXPECT_EQ(got.semantics, want.semantics);
  EXPECT_EQ(got.program_text, want.program_text);
  ASSERT_EQ(got.base.size(), want.base.size());
  for (const auto& [name, rel] : want.base) {
    ASSERT_TRUE(got.base.count(name)) << name;
    EXPECT_EQ(got.base.at(name), rel) << name;
  }
  ASSERT_EQ(got.views.size(), want.views.size());
  for (const auto& [name, rel] : want.views) {
    ASSERT_TRUE(got.views.count(name)) << name;
    EXPECT_EQ(got.views.at(name), rel) << name;
  }
}

TEST(CheckpointTest, WriteReadRoundTrips) {
  const std::string dir = TestDir("roundtrip");
  const CheckpointData data = SampleData();
  IVM_ASSERT_OK(WriteCheckpoint(dir, data));
  auto loaded = ReadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDataEq(*loaded, data);
}

TEST(CheckpointTest, SecondWriteReplacesFirst) {
  const std::string dir = TestDir("replace");
  CheckpointData data = SampleData();
  IVM_ASSERT_OK(WriteCheckpoint(dir, data));
  data.epoch = 12;
  data.base.at("link").Add(Tup(9, 9), 1);
  IVM_ASSERT_OK(WriteCheckpoint(dir, data));
  auto loaded = ReadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDataEq(*loaded, data);
  // The swap completed, so no stale fallback lingers.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "checkpoint.old"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "checkpoint.tmp"));
}

TEST(CheckpointTest, EmptyDirIsNotFound) {
  const std::string dir = TestDir("empty");
  auto loaded = ReadCheckpoint(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, FallsBackToOldWhenSwapWasInterrupted) {
  const std::string dir = TestDir("fallback");
  CheckpointData old_data = SampleData();
  IVM_ASSERT_OK(WriteCheckpoint(dir, old_data));
  // Simulate a crash after `checkpoint` was demoted to `checkpoint.old` but
  // before the new staging dir was promoted.
  fs::rename(fs::path(dir) / "checkpoint", fs::path(dir) / "checkpoint.old");
  auto loaded = ReadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDataEq(*loaded, old_data);
}

TEST(CheckpointTest, IncompleteLiveSnapshotFallsBackToOld) {
  const std::string dir = TestDir("incomplete");
  CheckpointData old_data = SampleData();
  IVM_ASSERT_OK(WriteCheckpoint(dir, old_data));
  fs::rename(fs::path(dir) / "checkpoint", fs::path(dir) / "checkpoint.old");
  // A live dir without MANIFEST (crash mid-stage-promotion) must not win.
  fs::create_directories(fs::path(dir) / "checkpoint");
  std::ofstream(fs::path(dir) / "checkpoint" / "base_link.csv") << "1,2,1\n";
  auto loaded = ReadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDataEq(*loaded, old_data);
}

TEST(CheckpointTest, StaleTmpDirIsIgnored) {
  const std::string dir = TestDir("staletmp");
  const CheckpointData data = SampleData();
  IVM_ASSERT_OK(WriteCheckpoint(dir, data));
  // Leftover staging dir from a crashed writer must neither be read nor
  // break subsequent writes.
  fs::create_directories(fs::path(dir) / "checkpoint.tmp");
  std::ofstream(fs::path(dir) / "checkpoint.tmp" / "junk") << "junk";
  auto loaded = ReadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok());
  ExpectDataEq(*loaded, data);
  IVM_ASSERT_OK(WriteCheckpoint(dir, data));
}

}  // namespace
}  // namespace ivm
