#include "core/change_set.h"

#include <limits>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

TEST(ChangeSetTest, InsertDeleteUpdate) {
  ChangeSet cs;
  cs.Insert("r", Tup(1));
  cs.Delete("r", Tup(2));
  cs.Update("r", Tup(3), Tup(4));
  const Relation& d = cs.Delta("r");
  EXPECT_EQ(d.Count(Tup(1)), 1);
  EXPECT_EQ(d.Count(Tup(2)), -1);
  EXPECT_EQ(d.Count(Tup(3)), -1);
  EXPECT_EQ(d.Count(Tup(4)), 1);
}

TEST(ChangeSetTest, CountsMerge) {
  ChangeSet cs;
  cs.Insert("r", Tup(1), 2);
  cs.Insert("r", Tup(1), 3);
  EXPECT_EQ(cs.Delta("r").Count(Tup(1)), 5);
  cs.Delete("r", Tup(1), 5);
  EXPECT_TRUE(cs.empty());  // cancelled out
}

TEST(ChangeSetTest, EmptyAndTotals) {
  ChangeSet cs;
  EXPECT_TRUE(cs.empty());
  EXPECT_EQ(cs.TotalTuples(), 0u);
  cs.Insert("a", Tup(1));
  cs.Insert("b", Tup(2));
  EXPECT_FALSE(cs.empty());
  EXPECT_EQ(cs.TotalTuples(), 2u);
}

TEST(ChangeSetTest, DeltaOfUnknownRelationIsEmpty) {
  ChangeSet cs;
  EXPECT_TRUE(cs.Delta("nope").empty());
  EXPECT_FALSE(cs.Has("nope"));
}

TEST(ChangeSetTest, MergeRelation) {
  ChangeSet cs;
  Relation delta("d", 1);
  delta.Add(Tup(1), -2);
  cs.Merge("r", delta);
  EXPECT_EQ(cs.Delta("r").Count(Tup(1)), -2);
}

TEST(ChangeSetTest, ToStringSkipsEmpty) {
  ChangeSet cs;
  cs.Insert("r", Tup(1));
  cs.Delete("r", Tup(1));
  EXPECT_EQ(cs.ToString(), "");
}

TEST(ChangeSetTest, ValidateFlagsOverflowedDeltas) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  ChangeSet cs;
  cs.Insert("r", Tup(1), kMax);
  IVM_EXPECT_OK(cs.Validate());
  cs.Insert("r", Tup(1), 1);  // saturates the delta count
  Status s = cs.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'r'"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("overflow"), std::string::npos) << s.ToString();
}

TEST(ChangeSetTest, ValidateFlagsOverflowFromMerge) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  ChangeSet cs;
  cs.Insert("r", Tup(1), kMax);
  Relation delta("r", 1);
  delta.Add(Tup(1), kMax);
  cs.Merge("r", delta);
  EXPECT_FALSE(cs.Validate().ok());
}

}  // namespace
}  // namespace ivm
