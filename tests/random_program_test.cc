// Program-space fuzzing: generate random safe, stratified, nonrecursive
// programs (joins with shared variables, projections, unions, negation,
// comparisons, aggregation), random databases, and random update sequences;
// every maintainer must agree with the recompute oracle throughout.

#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "random_program_gen.h"
#include "test_util.h"
#include "workload/update_gen.h"

namespace ivm {
namespace {

constexpr int kNumNodes = 12;

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, MaintainersAgreeWithOracle) {
  std::mt19937_64 rng(GetParam() * 7907);
  const std::string program_text = testing_util::RandomProgramText(&rng);
  SCOPED_TRACE(program_text);

  Database db;
  std::uniform_int_distribution<int> node(0, kNumNodes - 1);
  for (const char* name : {"e1", "e2"}) {
    db.CreateRelation(name, 2).CheckOK();
    for (int i = 0; i < 25; ++i) {
      int a = node(rng), b = node(rng);
      if (a != b) db.mutable_relation(name).Set(Tup(a, b), 1);
    }
  }

  for (Strategy strategy :
       {Strategy::kCounting, Strategy::kDRed, Strategy::kRecompute}) {
    for (Semantics semantics : {Semantics::kSet, Semantics::kDuplicate}) {
      if (strategy == Strategy::kDRed && semantics == Semantics::kDuplicate) {
        continue;
      }
      auto subject = ViewManager::CreateFromText(
          program_text, testing_util::ManagerOptions(strategy, semantics));
      ASSERT_TRUE(subject.ok()) << subject.status().ToString();
      auto oracle = ViewManager::CreateFromText(
          program_text,
          testing_util::ManagerOptions(Strategy::kRecompute, semantics));
      ASSERT_TRUE(oracle.ok());
      IVM_ASSERT_OK((*subject)->Initialize(db));
      IVM_ASSERT_OK((*oracle)->Initialize(db));

      std::mt19937_64 update_rng(GetParam() * 31 + static_cast<int>(strategy));
      for (int round = 0; round < 4; ++round) {
        ChangeSet batch;
        for (const char* name : {"e1", "e2"}) {
          const Relation& current = *(*subject)->snapshot().Get(name).value();
          for (const Tuple& t : SampleTuples(current, 2, update_rng())) {
            batch.Delete(name, t);
          }
          for (int i = 0; i < 2; ++i) {
            int a = node(update_rng), b = node(update_rng);
            Tuple t = Tup(a, b);
            if (a != b && !current.Contains(t) &&
                !batch.Delta(name).Contains(t)) {
              batch.Insert(name, t);
            }
          }
        }
        auto s_out = (*subject)->Apply(batch);
        ASSERT_TRUE(s_out.ok()) << s_out.status().ToString();
        auto o_out = (*oracle)->Apply(batch);
        ASSERT_TRUE(o_out.ok()) << o_out.status().ToString();

        for (PredicateId pred : (*subject)->program().DerivedPredicates()) {
          const std::string& name = (*subject)->program().predicate(pred).name;
          const Relation& actual = *(*subject)->snapshot().Get(name).value();
          const Relation& expected = *(*oracle)->snapshot().Get(name).value();
          if (semantics == Semantics::kDuplicate) {
            ASSERT_EQ(actual.ToString(), expected.ToString())
                << name << " with " << StrategyName(strategy) << " round "
                << round;
          } else {
            ASSERT_TRUE(actual.SameSet(expected))
                << name << " with " << StrategyName(strategy) << " round "
                << round << "\nactual:   " << actual.ToString()
                << "\nexpected: " << expected.ToString();
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace ivm
