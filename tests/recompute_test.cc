#include "core/recompute.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

TEST(RecomputeTest, ReportsSetDiffs) {
  auto m = RecomputeMaintainer::Create(
      MustParseProgram("base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y)."),
      Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").size(), 1u);
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "e")), -1);
}

TEST(RecomputeTest, ReportsCountDiffsUnderDuplicateSemantics) {
  auto m = RecomputeMaintainer::Create(
      MustParseProgram("base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y)."),
      Semantics::kDuplicate).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "c")), -1);
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "e")), -1);
}

TEST(RecomputeTest, RecursiveViews) {
  auto m = RecomputeMaintainer::Create(
      MustParseProgram("base e(X, Y). p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z) & e(Z, Y)."),
      Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(&db, "e(1,2). e(2,3).");
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Insert("e", Tup(3, 4));
  ChangeSet out = m->Apply(changes).value();
  // New pairs: (3,4), (2,4), (1,4).
  EXPECT_EQ(out.Delta("p").size(), 3u);
  EXPECT_TRUE(m->GetRelation("p").value()->Contains(Tup(1, 4)));
}

TEST(RecomputeTest, DuplicateSemanticsRejectsRecursion) {
  auto m = RecomputeMaintainer::Create(
      MustParseProgram("base e(X, Y). p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z) & e(Z, Y)."),
      Semantics::kDuplicate);
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecomputeTest, RejectsBadDeletions) {
  auto m = RecomputeMaintainer::Create(
      MustParseProgram("base e(X). p(X) :- e(X)."), Semantics::kSet).value();
  Database db;
  db.CreateRelation("e", 1).CheckOK();
  m->Initialize(db).CheckOK();
  ChangeSet changes;
  changes.Delete("e", Tup(1));
  EXPECT_EQ(m->Apply(changes).status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ivm
