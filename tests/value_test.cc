#include "common/value.h"

#include <gtest/gtest.h>

namespace ivm {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Real(2.5).is_double());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_EQ(Value::Int(3).int_value(), 3);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Str("abc").string_value(), "abc");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Real(1).is_numeric());
  EXPECT_FALSE(Value::Str("1").is_numeric());
}

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), Value::Kind::kNull);
}

TEST(ValueTest, EqualityIsKindSensitive) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  // Int 1 and double 1.0 are distinct *values* (comparison builtins treat
  // them numerically, but storage does not).
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Str("1"), Value::Int(1));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingWithinKind) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Real(1.5), Value::Real(2.5));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_FALSE(Value::Int(2) < Value::Int(1));
}

TEST(ValueTest, OrderingAcrossKindsIsTotal) {
  // null < int < double < string by kind.
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Int(100), Value::Real(-5.0));
  EXPECT_LT(Value::Real(1e18), Value::Str(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Str("hop").Hash(), Value::Str("hop").Hash());
  EXPECT_NE(Value::Int(42).Hash(), Value::Int(43).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(ValueTest, ArithmeticIntInt) {
  EXPECT_EQ(Value::Add(Value::Int(2), Value::Int(3)).value(), Value::Int(5));
  EXPECT_EQ(Value::Subtract(Value::Int(2), Value::Int(3)).value(),
            Value::Int(-1));
  EXPECT_EQ(Value::Multiply(Value::Int(2), Value::Int(3)).value(),
            Value::Int(6));
  EXPECT_EQ(Value::Divide(Value::Int(7), Value::Int(2)).value(), Value::Int(3));
}

TEST(ValueTest, ArithmeticPromotesToDouble) {
  Value v = Value::Add(Value::Int(1), Value::Real(0.5)).value();
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.double_value(), 1.5);
}

TEST(ValueTest, StringConcatenation) {
  EXPECT_EQ(Value::Add(Value::Str("a"), Value::Str("b")).value(),
            Value::Str("ab"));
}

TEST(ValueTest, ArithmeticErrors) {
  EXPECT_FALSE(Value::Add(Value::Int(1), Value::Str("x")).ok());
  EXPECT_FALSE(Value::Divide(Value::Int(1), Value::Int(0)).ok());
  EXPECT_FALSE(Value::Divide(Value::Real(1), Value::Real(0.0)).ok());
  EXPECT_FALSE(Value::Multiply(Value::Null(), Value::Int(2)).ok());
}

}  // namespace
}  // namespace ivm
