#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

std::map<PredicateId, Relation> Eval(const Program& p, const Database& db,
                                     EvalOptions options) {
  Evaluator evaluator(p, options);
  std::map<PredicateId, Relation> out;
  Status s = evaluator.EvaluateAll(db, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

const Relation& Of(const Program& p,
                   const std::map<PredicateId, Relation>& views,
                   const std::string& name) {
  return views.at(p.Lookup(name).value());
}

TEST(EvaluatorTest, HopWithDuplicateSemantics) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  auto views = Eval(p, db, {Semantics::kDuplicate, false});
  const Relation& hop = Of(p, views, "hop");
  EXPECT_EQ(hop.Count(Tup("a", "c")), 2);
  EXPECT_EQ(hop.Count(Tup("a", "e")), 1);
}

TEST(EvaluatorTest, SetSemanticsCountsAreOne) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  auto views = Eval(p, db, {Semantics::kSet, false});
  const Relation& hop = Of(p, views, "hop");
  EXPECT_EQ(hop.Count(Tup("a", "c")), 1);
}

TEST(EvaluatorTest, StratumCountsKeepPerStratumDerivations) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  auto views = Eval(p, db, {Semantics::kSet, true});
  EXPECT_EQ(Of(p, views, "hop").Count(Tup("a", "c")), 2);
}

TEST(EvaluatorTest, Example42TriHop) {
  // link = {ab, ad, dc, bc, ch, fg}; hop = {ac 2, dh, bh}; tri_hop = {ah 2}.
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).");
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).");
  auto views = Eval(p, db, {Semantics::kDuplicate, false});
  const Relation& hop = Of(p, views, "hop");
  EXPECT_EQ(hop.Count(Tup("a", "c")), 2);
  EXPECT_EQ(hop.Count(Tup("d", "h")), 1);
  EXPECT_EQ(hop.Count(Tup("b", "h")), 1);
  EXPECT_EQ(hop.size(), 3u);
  const Relation& tri = Of(p, views, "tri_hop");
  EXPECT_EQ(tri.Count(Tup("a", "h")), 2);
  EXPECT_EQ(tri.size(), 1u);
}

TEST(EvaluatorTest, MultisetBaseRelationsUnderDuplicateSemantics) {
  Program p = MustParseProgram("base e(X). p(X) :- e(X).");
  Database db;
  db.CreateRelation("e", 1).CheckOK();
  db.mutable_relation("e").Add(Tup(1), 3);
  auto dup = Eval(p, db, {Semantics::kDuplicate, false});
  EXPECT_EQ(Of(p, dup, "p").Count(Tup(1)), 3);
  auto set = Eval(p, db, {Semantics::kSet, false});
  EXPECT_EQ(Of(p, set, "p").Count(Tup(1)), 1);
}

TEST(EvaluatorTest, TransitiveClosureOnChain) {
  Program p = MustParseProgram(
      "base edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- path(X, Z) & edge(Z, Y).");
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  for (int i = 0; i < 10; ++i) db.mutable_relation("edge").Add(Tup(i, i + 1), 1);
  auto views = Eval(p, db, {Semantics::kSet, false});
  const Relation& path = Of(p, views, "path");
  EXPECT_EQ(path.size(), 11u * 10u / 2u);  // all i<j pairs
  EXPECT_TRUE(path.Contains(Tup(0, 10)));
  EXPECT_FALSE(path.Contains(Tup(3, 3)));
}

TEST(EvaluatorTest, TransitiveClosureOnCycleTerminates) {
  Program p = MustParseProgram(
      "base edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- path(X, Z) & edge(Z, Y).");
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  for (int i = 0; i < 5; ++i) db.mutable_relation("edge").Add(Tup(i, (i + 1) % 5), 1);
  auto views = Eval(p, db, {Semantics::kSet, false});
  EXPECT_EQ(Of(p, views, "path").size(), 25u);  // complete
}

TEST(EvaluatorTest, DuplicateSemanticsRejectsRecursion) {
  Program p = MustParseProgram(
      "base edge(X, Y). path(X, Y) :- edge(X, Y). path(X, Y) :- path(X, Z) & edge(Z, Y).");
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  Evaluator evaluator(p, {Semantics::kDuplicate, false});
  std::map<PredicateId, Relation> out;
  EXPECT_EQ(evaluator.EvaluateAll(db, &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EvaluatorTest, MutualRecursion) {
  // Even/odd path lengths on a chain.
  Program p = MustParseProgram(
      "base e(X, Y).\n"
      "odd(X, Y) :- e(X, Y).\n"
      "odd(X, Y) :- even(X, Z) & e(Z, Y).\n"
      "even(X, Y) :- odd(X, Z) & e(Z, Y).");
  Database db;
  db.CreateRelation("e", 2).CheckOK();
  for (int i = 0; i < 6; ++i) db.mutable_relation("e").Add(Tup(i, i + 1), 1);
  auto views = Eval(p, db, {Semantics::kSet, false});
  EXPECT_TRUE(Of(p, views, "odd").Contains(Tup(0, 1)));
  EXPECT_TRUE(Of(p, views, "even").Contains(Tup(0, 2)));
  EXPECT_TRUE(Of(p, views, "odd").Contains(Tup(0, 5)));
  EXPECT_FALSE(Of(p, views, "even").Contains(Tup(0, 5)));
}

TEST(EvaluatorTest, NegationAcrossStrata) {
  // Example 6.1's only_tri_hop shape.
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).\n"
      "only_tri_hop(X, Y) :- tri_hop(X, Y) & !hop(X, Y).");
  Database db;
  testing_util::MustLoadFacts(
      &db,
      "link(a,b). link(a,e). link(a,f). link(a,g). link(b,c). link(c,d). "
      "link(c,k). link(e,d). link(f,d). link(g,h). link(h,k).");
  auto views = Eval(p, db, {Semantics::kDuplicate, false});
  const Relation& only = Of(p, views, "only_tri_hop");
  EXPECT_EQ(only.size(), 1u);
  EXPECT_EQ(only.Count(Tup("a", "k")), 2);
}

TEST(EvaluatorTest, AggregationExample62) {
  Program p = MustParseProgram(
      "base link(S, D, C).\n"
      "hop(S, D, C1 + C2) :- link(S, I, C1) & link(I, D, C2).\n"
      "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).");
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a, b, 1). link(b, c, 2). link(a, d, 5). link(d, c, 1).");
  auto views = Eval(p, db, {Semantics::kSet, false});
  const Relation& mch = Of(p, views, "min_cost_hop");
  EXPECT_EQ(mch.size(), 1u);
  EXPECT_TRUE(mch.Contains(Tup("a", "c", 3)));
}

TEST(EvaluatorTest, AggregateOverRecursiveView) {
  // Count reachable nodes per source — aggregation stratified above
  // recursion.
  Program p = MustParseProgram(
      "base edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- path(X, Z) & edge(Z, Y).\n"
      "reach_count(X, N) :- groupby(path(X, Y), [X], N = count(*)).");
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  for (int i = 0; i < 4; ++i) db.mutable_relation("edge").Add(Tup(i, i + 1), 1);
  auto views = Eval(p, db, {Semantics::kSet, false});
  const Relation& rc = Of(p, views, "reach_count");
  EXPECT_TRUE(rc.Contains(Tup(0, 4)));
  EXPECT_TRUE(rc.Contains(Tup(3, 1)));
}

TEST(EvaluatorTest, NegationInsideRecursionOverLowerStratum) {
  // path over edges not marked blocked.
  Program p = MustParseProgram(
      "base edge(X, Y). base blocked(X, Y).\n"
      "ok(X, Y) :- edge(X, Y) & !blocked(X, Y).\n"
      "path(X, Y) :- ok(X, Y).\n"
      "path(X, Y) :- path(X, Z) & ok(Z, Y).");
  Database db;
  testing_util::MustLoadFacts(&db, "edge(1,2). edge(2,3). edge(3,4). blocked(2,3).");
  auto views = Eval(p, db, {Semantics::kSet, false});
  const Relation& path = Of(p, views, "path");
  EXPECT_TRUE(path.Contains(Tup(1, 2)));
  EXPECT_TRUE(path.Contains(Tup(3, 4)));
  EXPECT_FALSE(path.Contains(Tup(1, 3)));
  EXPECT_FALSE(path.Contains(Tup(1, 4)));
}

TEST(EvaluatorTest, UnionOfRules) {
  Program p = MustParseProgram(
      "base e(X, Y). base f(X, Y).\n"
      "u(X, Y) :- e(X, Y).\n"
      "u(X, Y) :- f(X, Y).");
  Database db;
  testing_util::MustLoadFacts(&db, "e(a, b). f(a, b). f(c, d).");
  auto dup = Eval(p, db, {Semantics::kDuplicate, false});
  EXPECT_EQ(Of(p, dup, "u").Count(Tup("a", "b")), 2);  // two derivations
  auto set = Eval(p, db, {Semantics::kSet, false});
  EXPECT_EQ(Of(p, set, "u").Count(Tup("a", "b")), 1);
}

TEST(EvaluatorTest, EmptyBaseYieldsEmptyViews) {
  Program p = MustParseProgram(
      "base e(X, Y). path(X, Y) :- e(X, Y). path(X, Y) :- path(X, Z) & e(Z, Y).");
  Database db;
  db.CreateRelation("e", 2).CheckOK();
  auto views = Eval(p, db, {Semantics::kSet, false});
  EXPECT_TRUE(Of(p, views, "path").empty());
}

TEST(EvaluatorTest, MissingBaseRelationErrors) {
  Program p = MustParseProgram("base e(X). p(X) :- e(X).");
  Database db;
  Evaluator evaluator(p, {Semantics::kSet, false});
  std::map<PredicateId, Relation> out;
  EXPECT_EQ(evaluator.EvaluateAll(db, &out).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ivm
