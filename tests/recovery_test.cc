// Durability and crash recovery, without fault injection: a manager with
// EnableDurability() can be reconstructed by ViewManager::Recover() from its
// checkpoint plus WAL tail, across applies, checkpoints, rule changes, and
// torn log tails.

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "test_util.h"

namespace ivm {
namespace {

using ::ivm::testing_util::ExpectRelationEq;
using ::ivm::testing_util::MustLoadFacts;
using ::ivm::testing_util::MustParseProgram;

namespace fs = std::filesystem;

// Nonrecursive on purpose: every strategy (counting and PF reject recursion,
// recursive counting needs acyclic derivations) maintains it on any graph.
constexpr const char* kHopProgram =
    "base link(S, D). "
    "hop(X, Y) :- link(X, Z) & link(Z, Y). "
    "tri(X) :- link(X, Y) & link(Y, Z) & link(Z, X).";

std::string TestDir(const std::string& name) {
  fs::path p = fs::path(::testing::TempDir()) / ("ivm_recovery_" + name);
  fs::remove_all(p);
  return p.string();
}

std::unique_ptr<ViewManager> MakeManager(Strategy strategy,
                                         const char* program = kHopProgram) {
  // Recursive counting maintains full derivation counts and requires
  // duplicate semantics at creation.
  const Semantics semantics = strategy == Strategy::kRecursiveCounting
                                  ? Semantics::kDuplicate
                                  : Semantics::kSet;
  auto manager =
      ViewManager::Create(MustParseProgram(program),
                          testing_util::ManagerOptions(strategy, semantics));
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  Database db;
  MustLoadFacts(&db, "link(a, b). link(b, c). link(c, d). link(d, a).");
  IVM_EXPECT_OK((*manager)->Initialize(db));
  return std::move(*manager);
}

void ExpectManagersEqual(ViewManager& got, ViewManager& want) {
  EXPECT_EQ(got.epoch(), want.epoch());
  for (const char* name : {"link", "hop", "tri"}) {
    auto got_rel = got.snapshot().Get(name);
    auto want_rel = want.snapshot().Get(name);
    ASSERT_TRUE(got_rel.ok()) << name << ": " << got_rel.status().ToString();
    ASSERT_TRUE(want_rel.ok()) << name << ": " << want_rel.status().ToString();
    ExpectRelationEq(**got_rel, **want_rel);
  }
}

class RecoveryTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(RecoveryTest, RecoverReplaysWalTail) {
  const std::string dir = TestDir(StrategyName(GetParam()));
  auto live = MakeManager(GetParam());
  IVM_ASSERT_OK(live->EnableDurability(dir));

  ChangeSet c1;
  c1.Insert("link", Tup("a", "e"));
  c1.Insert("link", Tup("e", "c"));
  ASSERT_TRUE(live->Apply(c1).ok());
  ChangeSet c2;
  c2.Delete("link", Tup("b", "c"));
  ASSERT_TRUE(live->Apply(c2).ok());
  EXPECT_EQ(live->epoch(), 2u);

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectManagersEqual(**recovered, *live);
  EXPECT_EQ((*recovered)->strategy(), live->strategy());
}

TEST(RecoverExecutorTest, CallerSuppliedExecutorIsRestoredOnRecovery) {
  // The checkpoint persists strategy/semantics but not the executor (a
  // machine-local knob); Recover takes it as a parameter instead of silently
  // dropping to serial.
  const std::string dir = TestDir("parallel_executor");
  auto live = MakeManager(Strategy::kCounting);
  IVM_ASSERT_OK(live->EnableDurability(dir));
  ChangeSet c1;
  c1.Insert("link", Tup("a", "e"));
  c1.Insert("link", Tup("e", "c"));
  ASSERT_TRUE(live->Apply(c1).ok());

  ExecutorOptions executor;
  executor.threads = 4;
  auto recovered = ViewManager::Recover(dir, /*metrics=*/nullptr, executor);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->executor().threads(), 4);
  // Parallel replay rebuilds the same state as the serial live manager.
  ExpectManagersEqual(**recovered, *live);

  // Default recovery keeps the serial path.
  auto serial = ViewManager::Recover(dir);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ((*serial)->executor().threads(), 1);
  ExpectManagersEqual(**serial, *live);
}

TEST(RecoverExecutorTest, ParallelRecoveryOfPFCheckpointIsRejected) {
  // Create's executor/strategy validation applies on the recovery path too.
  const std::string dir = TestDir("parallel_pf");
  auto live = MakeManager(Strategy::kPF);
  IVM_ASSERT_OK(live->EnableDurability(dir));

  ExecutorOptions executor;
  executor.threads = 4;
  auto recovered = ViewManager::Recover(dir, /*metrics=*/nullptr, executor);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(RecoveryTest, CheckpointAbsorbsWalAndRecoveryContinues) {
  const std::string dir = TestDir(std::string("ckpt_") +
                                  StrategyName(GetParam()));
  auto live = MakeManager(GetParam());
  IVM_ASSERT_OK(live->EnableDurability(dir));

  ChangeSet c1;
  c1.Insert("link", Tup("a", "c"));
  ASSERT_TRUE(live->Apply(c1).ok());
  IVM_ASSERT_OK(live->Checkpoint());
  // The checkpoint absorbed the log: no records should remain.
  auto records = WriteAheadLog::ReadAll(dir + "/wal.log");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());

  ChangeSet c2;
  c2.Delete("link", Tup("c", "d"));
  ASSERT_TRUE(live->Apply(c2).ok());

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectManagersEqual(**recovered, *live);

  // The recovered manager is durable again: keep mutating, recover again.
  ChangeSet c3;
  c3.Insert("link", Tup("d", "b"));
  ASSERT_TRUE((*recovered)->Apply(c3).ok());
  auto again = ViewManager::Recover(dir);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ExpectManagersEqual(**again, **recovered);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, RecoveryTest,
    ::testing::Values(Strategy::kCounting, Strategy::kDRed, Strategy::kPF,
                      Strategy::kRecursiveCounting, Strategy::kRecompute),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      std::string name = StrategyName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(RecoveryRuleChangeTest, RuleChangesReplayThroughWal) {
  const std::string dir = TestDir("rules");
  auto live = MakeManager(Strategy::kDRed,
                          "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  IVM_ASSERT_OK(live->EnableDurability(dir));

  ASSERT_TRUE(live->AddRuleText("tri(X) :- link(X, Y) & link(Y, Z) & link(Z, X).")
                  .ok());
  ChangeSet c1;
  c1.Insert("link", Tup("a", "c"));
  ASSERT_TRUE(live->Apply(c1).ok());
  // Remove the rule just added (index past the original hop rule).
  ASSERT_TRUE(live->RemoveRule(1).ok());
  EXPECT_EQ(live->epoch(), 3u);

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->epoch(), 3u);
  EXPECT_EQ((*recovered)->program().rules().size(), live->program().rules().size());
  for (const char* name : {"link", "hop"}) {
    auto got = (*recovered)->snapshot().Get(name);
    auto want = live->snapshot().Get(name);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectRelationEq(**got, **want);
  }
}

TEST(RecoveryTornTailTest, TornTrailingRecordIsDiscarded) {
  const std::string dir = TestDir("torn");
  auto live = MakeManager(Strategy::kCounting);
  IVM_ASSERT_OK(live->EnableDurability(dir));

  ChangeSet c1;
  c1.Insert("link", Tup("a", "c"));
  ASSERT_TRUE(live->Apply(c1).ok());
  ChangeSet c2;
  c2.Insert("link", Tup("b", "d"));
  ASSERT_TRUE(live->Apply(c2).ok());

  // Tear the last record, as if the process died mid-append.
  const std::string wal_path = dir + "/wal.log";
  fs::resize_file(wal_path, fs::file_size(wal_path) - 5);

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->epoch(), 1u);

  // The recovered state matches a manager that only saw c1.
  auto expect = MakeManager(Strategy::kCounting);
  ASSERT_TRUE(expect->Apply(c1).ok());
  for (const char* name : {"link", "hop", "tri"}) {
    auto got = (*recovered)->snapshot().Get(name);
    auto want = expect->snapshot().Get(name);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectRelationEq(**got, **want);
  }
}

TEST(RecoveryErrorTest, EmptyDirIsNotFound) {
  const std::string dir = TestDir("missing");
  fs::create_directories(dir);
  auto recovered = ViewManager::Recover(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(RecoveryErrorTest, RolledBackMutationLeavesNoWalRecord) {
  const std::string dir = TestDir("rollback");
  auto live = MakeManager(Strategy::kCounting);
  IVM_ASSERT_OK(live->EnableDurability(dir));

  ChangeSet good;
  good.Insert("link", Tup("a", "c"));
  ASSERT_TRUE(live->Apply(good).ok());

  // Deleting a tuple that is absent violates Lemma 4.1 under set semantics:
  // the Apply fails, rolls back, and must not reach the log.
  ChangeSet bad;
  bad.Delete("link", Tup("nope", "nope"));
  ASSERT_FALSE(live->Apply(bad).ok());
  EXPECT_EQ(live->epoch(), 1u);

  auto records = WriteAheadLog::ReadAll(dir + "/wal.log");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectManagersEqual(**recovered, *live);
}

TEST(RecoveryErrorTest, ThrowingTriggerLeavesNoWalRecord) {
  const std::string dir = TestDir("trigger");
  auto live = MakeManager(Strategy::kCounting);
  IVM_ASSERT_OK(live->EnableDurability(dir));

  ChangeSet good;
  good.Insert("link", Tup("a", "c"));
  ASSERT_TRUE(live->Apply(good).ok());

  // A throwing trigger aborts the mutation after the WAL append; the record
  // must be rolled back with the in-memory state, or recovery would replay
  // a mutation the caller saw fail.
  ViewManager::Subscription sub =
      live->Watch("hop", [](const std::string&, const Relation&) {
        throw std::runtime_error("no thanks");
      });
  ChangeSet more;
  more.Insert("link", Tup("c", "b"));
  ASSERT_FALSE(live->Apply(more).ok());
  EXPECT_EQ(live->epoch(), 1u);

  auto records = WriteAheadLog::ReadAll(dir + "/wal.log");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectManagersEqual(**recovered, *live);

  // After unsubscribing, the same change set commits and epochs continue
  // seamlessly from the rolled-back record.
  sub.Unsubscribe();
  ASSERT_TRUE(live->Apply(more).ok());
  EXPECT_EQ(live->epoch(), 2u);
  auto again = ViewManager::Recover(dir);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ExpectManagersEqual(**again, *live);
}

TEST(RecoveryValuesTest, ControlCharacterValuesSurviveCheckpointAndRecover) {
  const std::string dir = TestDir("values");
  auto live = MakeManager(Strategy::kCounting);
  IVM_ASSERT_OK(live->EnableDurability(dir));

  // Legal string data the WAL encodes byte-exactly; the checkpoint must
  // round-trip it too (it is the only copy once the WAL is truncated).
  std::string nul("nul");
  nul += '\0';
  nul += "byte";
  ChangeSet awkward;
  awkward.Insert("link", Tup(std::string("line1\nline2"), std::string("x")));
  awkward.Insert("link", Tup(std::string("x"), std::string("cr\rlf")));
  awkward.Insert("link", Tup(nul, std::string("back\\slash")));
  ASSERT_TRUE(live->Apply(awkward).ok());
  IVM_ASSERT_OK(live->Checkpoint());

  auto recovered = ViewManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectManagersEqual(**recovered, *live);
}

}  // namespace
}  // namespace ivm
