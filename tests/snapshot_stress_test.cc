// Reader/writer stress for the snapshot-isolated read path
// (docs/concurrency.md): N reader threads continuously pin snapshots and
// check them for internal consistency while ONE writer thread runs a stream
// of random Applies. Run under ThreadSanitizer via tools/run_tsan.sh — a
// clean pass there is the acceptance gate for changes to storage/epoch.* and
// the ViewManager publication path.
//
// What the readers assert:
//   * prefix consistency — a pinned snapshot's contents are byte-identical
//     to what the writer recorded right after committing that epoch (never
//     a mix of two epochs, never a half-applied batch);
//   * stability — reading the same snapshot twice gives identical contents
//     even while the writer commits more epochs in between;
//   * Query() runs safely on shared extents (concurrent demand-built
//     indexes) and agrees with itself on one snapshot.
// Plus a long-held snapshot pinned mid-stream must be unchanged after the
// writer finishes (epoch reclamation must not free under a reader).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/tuple.h"
#include "core/change_set.h"
#include "core/snapshot.h"
#include "core/view_manager.h"
#include "obs/metrics.h"
#include "random_program_gen.h"
#include "storage/database.h"
#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustLoadFacts;
using testing_util::RandomProgramText;

/// Full deterministic fingerprint of a pinned snapshot: every relation's
/// sorted contents.
std::map<std::string, std::string> FingerprintSnapshot(const Snapshot& snap) {
  std::map<std::string, std::string> out;
  for (const std::string& name : snap.RelationNames()) {
    out[name] = (*snap.Get(name))->ToString();
  }
  return out;
}

/// Shared epoch → fingerprint journal. The writer records each epoch's
/// contents immediately after the Apply that committed it returns (and
/// before starting the next one), so a reader pinning epoch E waits at most
/// one in-flight record for expected[E] to appear.
class EpochJournal {
 public:
  void Record(uint64_t epoch, std::map<std::string, std::string> fp) {
    std::lock_guard<std::mutex> lock(mu_);
    expected_.emplace(epoch, std::move(fp));
  }

  /// Blocks (spinning with yields) until the writer has journaled `epoch`.
  std::map<std::string, std::string> WaitFor(uint64_t epoch) const {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = expected_.find(epoch);
        if (it != expected_.end()) return it->second;
      }
      std::this_thread::yield();
    }
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::map<std::string, std::string>> expected_;
};

ChangeSet RandomEdgeBatch(std::mt19937_64* rng, const Snapshot& snap) {
  std::uniform_int_distribution<int> node(0, 9);
  std::uniform_int_distribution<int> coin(0, 1);
  ChangeSet batch;
  for (const char* name : {"e1", "e2"}) {
    const Relation& current = **snap.Get(name);
    // Delete one existing edge (when there is one) ...
    if (!current.empty()) {
      std::vector<Tuple> tuples = current.SortedTuples();
      std::uniform_int_distribution<size_t> pick(0, tuples.size() - 1);
      batch.Delete(name, tuples[pick(*rng)]);
    }
    // ... and insert a couple of fresh ones.
    for (int i = 0; i < 2; ++i) {
      Tuple t = Tup(node(*rng), node(*rng));
      if (!current.Contains(t) && !batch.Delta(name).Contains(t)) {
        batch.Insert(name, t);
      }
    }
  }
  return batch;
}

TEST(SnapshotStressTest, ConcurrentReadersOverOneWriter) {
  constexpr int kReaders = 4;
  constexpr int kWriterBatches = 40;

  std::mt19937_64 rng(2026);
  MetricsRegistry metrics;
  ViewManager::Options options;
  options.metrics = &metrics;
  auto vm = ViewManager::CreateFromText(RandomProgramText(&rng), options);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();

  Database db;
  MustLoadFacts(&db,
                "e1(0, 1). e1(1, 2). e1(2, 3). e1(3, 4). e1(4, 0). "
                "e2(0, 2). e2(2, 4). e2(4, 1). e2(1, 3).");
  IVM_ASSERT_OK((*vm)->Initialize(db));

  EpochJournal journal;
  {
    Snapshot seed = (*vm)->snapshot();
    ASSERT_TRUE(seed.valid());
    journal.Record(seed.epoch(), FingerprintSnapshot(seed));
  }

  // Pinned before any concurrent mutation; must read epoch-0 contents
  // before, during, and after the writer's whole run.
  Snapshot long_held = (*vm)->snapshot();
  const std::map<std::string, std::string> long_held_before =
      FingerprintSnapshot(long_held);

  std::atomic<bool> writer_done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 reader_rng(1000 + r);
      std::uniform_int_distribution<int> pct(0, 99);
      int iterations = 0;
      while (!writer_done.load(std::memory_order_acquire) ||
             iterations < 10) {
        ++iterations;
        Snapshot snap = (*vm)->snapshot();
        if (!snap.valid()) continue;

        // Prefix consistency: contents must equal what the writer recorded
        // for exactly this epoch.
        const auto observed = FingerprintSnapshot(snap);
        const auto expected = journal.WaitFor(snap.epoch());
        if (observed != expected) {
          ++violations;
          ADD_FAILURE() << "reader " << r << " saw torn epoch "
                        << snap.epoch();
          return;
        }

        // Stability: the same pinned snapshot re-read later (the writer may
        // have committed several epochs meanwhile) is bit-identical.
        if (FingerprintSnapshot(snap) != observed) {
          ++violations;
          ADD_FAILURE() << "reader " << r << " snapshot changed under pin";
          return;
        }

        // Concurrent querying exercises demand-built indexes on shared
        // extents; two identical queries on one snapshot must agree.
        if (pct(reader_rng) < 30) {
          auto q1 = snap.Query("e1(X, Y), e2(Y, Z)");
          auto q2 = snap.Query("e1(X, Y), e2(Y, Z)");
          ASSERT_TRUE(q1.ok()) << q1.status().ToString();
          ASSERT_TRUE(q2.ok()) << q2.status().ToString();
          if (q1.value().ToString() != q2.value().ToString()) {
            ++violations;
            ADD_FAILURE() << "reader " << r << " query disagreement";
            return;
          }
        }
      }
    });
  }

  // The single writer: random batches, journaling each committed epoch's
  // contents before starting the next mutation.
  for (int b = 0; b < kWriterBatches; ++b) {
    ChangeSet batch;
    {
      Snapshot current = (*vm)->snapshot();
      batch = RandomEdgeBatch(&rng, current);
    }
    if (batch.empty()) continue;
    auto out = (*vm)->Apply(batch);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    Snapshot committed = (*vm)->snapshot();
    journal.Record(committed.epoch(), FingerprintSnapshot(committed));
  }
  writer_done.store(true, std::memory_order_release);

  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // The long-held snapshot never moved, despite ~40 epochs retiring around
  // it; epoch reclamation must have kept every one of its extents alive.
  EXPECT_EQ(FingerprintSnapshot(long_held), long_held_before);
  EXPECT_EQ(long_held.epoch(), 0u);
  long_held.Release();

  // Observability: the writer's publications advanced the epoch gauge, and
  // dropping retired versions reclaimed extents.
  EXPECT_EQ(metrics.gauge_value("storage.epoch"),
            static_cast<int64_t>((*vm)->epoch()));
  EXPECT_EQ(metrics.gauge_value("storage.snapshots_pinned"), 0);
  EXPECT_GT(metrics.counter_value("storage.extents_reclaimed"), 0u);
  EXPECT_GT(metrics.counter_value("storage.extents_shared"), 0u);
}

// A writer-free sanity slice of the same invariants, cheap enough to run
// everywhere (the full interleavings are TSan's job above).
TEST(SnapshotStressTest, SnapshotSurvivesManagerMutationsSerially) {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  ASSERT_TRUE(vm.ok());
  Database db;
  MustLoadFacts(&db, "link(a, b). link(b, c).");
  IVM_ASSERT_OK((*vm)->Initialize(db));

  Snapshot pinned = (*vm)->snapshot();
  const std::string hop_before = (*pinned.Get("hop"))->ToString();
  EXPECT_EQ(hop_before, "{(\"a\", \"c\")}");

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ASSERT_TRUE((*vm)->Apply(changes).ok());

  // New snapshots see the new epoch; the pinned one still reads the old.
  EXPECT_TRUE((*(*vm)->snapshot().Get("hop"))->empty());
  EXPECT_EQ((*pinned.Get("hop"))->ToString(), hop_before);
  EXPECT_EQ(pinned.epoch(), 0u);
  EXPECT_EQ((*vm)->snapshot().epoch(), 1u);

  // Released handles refuse reads instead of dangling.
  pinned.Release();
  EXPECT_FALSE(pinned.valid());
  EXPECT_FALSE(pinned.Get("hop").ok());
}

// Regression: a rule change republishes copy-on-write, sharing the extents
// of every untouched relation. The first implementation force-copied all of
// them — a workaround for an ABA hazard in the (address, version) extent
// fingerprint, fixed by fingerprinting on Relation::uid() (process-unique,
// never reused even when a reallocated slot lands on the same address).
TEST(SnapshotStressTest, RuleChangeSharesUntouchedExtents) {
  MetricsRegistry metrics;
  ViewManager::Options options;
  options.strategy = Strategy::kDRed;
  options.metrics = &metrics;
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). base other(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "copy(X, Y) :- other(X, Y).\n",
      options);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();
  Database db;
  MustLoadFacts(&db, "link(a, b). link(b, c). other(p, q).");
  IVM_ASSERT_OK((*vm)->Initialize(db));

  Snapshot pinned = (*vm)->snapshot();
  const uint64_t shared_before = metrics.counter_value("storage.extents_shared");
  ASSERT_TRUE((*vm)->AddRuleText("hop(X, Y) :- link(X, Y).").ok());

  // Only 'hop' changed: 'link', 'other', and 'copy' must have been shared,
  // not copied, into the new storage version.
  EXPECT_GE(metrics.counter_value("storage.extents_shared"),
            shared_before + 3);
  // And the pinned pre-change snapshot still reads the old rule set's
  // contents (the shared extents are immutable).
  EXPECT_EQ((*pinned.Get("hop"))->ToString(), "{(\"a\", \"c\")}");
  EXPECT_EQ((*(*vm)->snapshot().Get("hop"))->SortedTuples().size(), 3u);
}

}  // namespace
}  // namespace ivm
