#include "storage/index.h"

#include <random>

#include <gtest/gtest.h>

#include "storage/relation.h"

namespace ivm {
namespace {

TEST(IndexTest, BuildAndLookup) {
  CountMap tuples;
  tuples[Tup(1, 2)] = 1;
  tuples[Tup(1, 3)] = 2;
  tuples[Tup(4, 2)] = 1;
  Index index({0});
  index.Build(tuples);
  EXPECT_EQ(index.distinct_keys(), 2u);
  const auto* one = index.Lookup(Tup(1));
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->size(), 2u);
  EXPECT_EQ(index.Lookup(Tup(9)), nullptr);
}

TEST(IndexTest, InsertUpdateRemoveEntries) {
  CountMap tuples;
  tuples[Tup(1, 2)] = 1;
  Index index({1});
  index.Build(tuples);
  auto [it, ok] = tuples.emplace(Tup(5, 2), 3);
  ASSERT_TRUE(ok);
  index.InsertEntry(&it->first, 3);
  const auto* entries = index.Lookup(Tup(2));
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->size(), 2u);

  index.UpdateEntry(&it->first, 7);
  entries = index.Lookup(Tup(2));
  bool found = false;
  for (const auto& e : *entries) {
    if (*e.tuple == Tup(5, 2)) {
      EXPECT_EQ(e.count, 7);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  index.RemoveEntry(Tup(1, 2));
  entries = index.Lookup(Tup(2));
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->size(), 1u);
  index.RemoveEntry(Tup(5, 2));
  EXPECT_EQ(index.Lookup(Tup(2)), nullptr);
}

/// The load-bearing property after the incremental-index change: an index
/// fetched once stays consistent through arbitrary mutation sequences.
TEST(IndexTest, RelationKeepsIndexesInSyncAcrossMutations) {
  Relation rel("r", 2);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> key(0, 9);
  std::uniform_int_distribution<int> val(0, 4);

  rel.GetIndex({0});  // build early so every mutation maintains it

  for (int step = 0; step < 2000; ++step) {
    int a = key(rng), b = val(rng);
    switch (step % 4) {
      case 0: rel.Add(Tup(a, b), 1); break;
      case 1: rel.Add(Tup(a, b), -rel.Count(Tup(a, b))); break;  // erase via merge
      case 2: rel.Set(Tup(a, b), val(rng)); break;
      case 3: rel.Erase(Tup(a, b)); break;
    }
    if (step % 97 != 0) continue;
    // Cross-check the index against a full scan.
    const Index& index = rel.GetIndex({0});
    for (int k = 0; k < 10; ++k) {
      size_t scan_count = 0;
      int64_t scan_total = 0;
      for (const auto& [tuple, count] : rel.tuples()) {
        if (tuple[0] == Value::Int(k)) {
          ++scan_count;
          scan_total += count;
        }
      }
      const auto* entries = index.Lookup(Tup(k));
      size_t index_count = entries == nullptr ? 0 : entries->size();
      int64_t index_total = 0;
      if (entries != nullptr) {
        for (const auto& e : *entries) index_total += e.count;
      }
      ASSERT_EQ(index_count, scan_count) << "key " << k << " step " << step;
      ASSERT_EQ(index_total, scan_total) << "key " << k << " step " << step;
    }
  }
}

TEST(IndexTest, UnionInPlaceMaintainsIndexes) {
  Relation a("a", 2);
  a.Add(Tup(1, 1), 1);
  a.Add(Tup(2, 2), 2);
  a.GetIndex({0});
  Relation delta("d", 2);
  delta.Add(Tup(1, 1), -1);  // erase
  delta.Add(Tup(2, 2), 1);   // bump count
  delta.Add(Tup(3, 3), 5);   // insert
  a.UnionInPlace(delta);
  const Index& index = a.GetIndex({0});
  EXPECT_EQ(index.Lookup(Tup(1)), nullptr);
  ASSERT_NE(index.Lookup(Tup(2)), nullptr);
  EXPECT_EQ((*index.Lookup(Tup(2)))[0].count, 3);
  ASSERT_NE(index.Lookup(Tup(3)), nullptr);
}

TEST(IndexTest, StaleIndexRebuildsOnDemand) {
  Relation rel("r", 2);
  rel.Add(Tup(1, 2), 1);
  rel.GetIndex({0});
  // Copy-assignment drops index caches; the fresh relation rebuilds lazily.
  Relation copy("c", 2);
  copy = rel;
  copy.Add(Tup(2, 3), 1);
  const Index& index = copy.GetIndex({0});
  EXPECT_NE(index.Lookup(Tup(1)), nullptr);
  EXPECT_NE(index.Lookup(Tup(2)), nullptr);
}

}  // namespace
}  // namespace ivm
