#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/advisor.h"
#include "analysis/analyzer.h"
#include "analysis/program_stats.h"
#include "analysis/diagnostic.h"
#include "core/view_manager.h"
#include "datalog/parser.h"
#include "test_util.h"

namespace ivm {
namespace {

using ::ivm::testing_util::MustParseProgram;

bool MessageContains(const Diagnostic& d, std::string_view needle) {
  return d.message.find(needle) != std::string::npos;
}

// Fails the test (with the full report) unless exactly one diagnostic with
// `code` exists; returns it.
Diagnostic MustFindOne(const AnalysisReport& report, DiagCode code) {
  std::vector<Diagnostic> matches = report.WithCode(code);
  EXPECT_EQ(matches.size(), 1u)
      << "expected exactly one [" << DiagCodeName(code)
      << "] diagnostic, report:\n"
      << report.ToString();
  if (matches.empty()) return Diagnostic{};
  return matches.front();
}

// ---------------------------------------------------------------------------
// Clean programs produce no diagnostics.

TEST(AnalyzerTest, CleanNonrecursiveProgramIsQuiet) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y).");
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(AnalyzerTest, CleanRecursiveNegationAggregationProgramIsQuiet) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). base cost(S, D, C). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y). "
      "dead(X, Y) :- cost(X, Y, C) & !tc(X, Y). "
      "best(S, M) :- groupby(cost(S, D, C), [S], M = min(C)).");
  EXPECT_TRUE(report.empty()) << report.ToString();
}

// ---------------------------------------------------------------------------
// unsafe-rule: provenance of the unbound variable.

TEST(AnalyzerTest, UnsafeRuleHeadVariableNamesVariableAndProvenance) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "bad(X, Y) :- link(X, Z).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kUnsafeRule);
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_EQ(d.line, 2);
  EXPECT_TRUE(MessageContains(d, "variable Y")) << d.message;
  EXPECT_TRUE(MessageContains(d, "head")) << d.message;
  EXPECT_TRUE(MessageContains(d, "not bound by a positive subgoal"))
      << d.message;
}

TEST(AnalyzerTest, UnsafeRuleNegatedVariableBlamesTheNegation) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "bad(X) :- link(X, Y) & !link(Y, W).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kUnsafeRule);
  EXPECT_TRUE(MessageContains(d, "variable W")) << d.message;
  // The provenance must point at the negated subgoal that cannot bind it.
  EXPECT_TRUE(MessageContains(d, "negated subgoal")) << d.message;
  EXPECT_TRUE(MessageContains(d, "!link(Y, W)")) << d.message;
}

TEST(AnalyzerTest, UnsafeRuleComparisonOnlyVariableIsReported) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "bad(X) :- link(X, Y) & Z < Y.\n");
  Diagnostic d = MustFindOne(report, DiagCode::kUnsafeRule);
  EXPECT_TRUE(MessageContains(d, "variable Z")) << d.message;
}

TEST(AnalyzerTest, EqualityChainBindsVariables) {
  // '=' propagation (X bound -> C bound -> D bound) keeps this rule safe.
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "ok(X, E) :- link(X, Y) & C = X & E = C.");
  EXPECT_FALSE(report.Has(DiagCode::kUnsafeRule)) << report.ToString();
}

TEST(AnalyzerTest, AllUnsafeRulesAreReportedNotJustTheFirst) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "bad1(X, Y) :- link(X, Z).\n"
      "bad2(X) :- link(X, Y) & !link(Y, W).\n");
  EXPECT_EQ(report.WithCode(DiagCode::kUnsafeRule).size(), 2u)
      << report.ToString();
}

// ---------------------------------------------------------------------------
// negation-cycle: the stratification failure names the offending cycle.

TEST(AnalyzerTest, NegationCycleNamesTheCyclePath) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "win(X) :- link(X, Y) & !lose(Y).\n"
      "lose(X) :- link(X, Y) & !win(Y).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kNegationCycle);
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_TRUE(MessageContains(d, "not stratifiable")) << d.message;
  // The witness cycle must be spelled out, starting from the predicate
  // whose negative edge closes it.
  const bool names_cycle = MessageContains(d, "win -> lose -> win") ||
                           MessageContains(d, "lose -> win -> lose");
  EXPECT_TRUE(names_cycle) << d.message;
}

TEST(AnalyzerTest, NegationSelfCycleIsReported) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "p(X) :- link(X, Y) & !p(Y).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kNegationCycle);
  EXPECT_TRUE(MessageContains(d, "p -> p")) << d.message;
  EXPECT_EQ(d.line, 2);
}

TEST(AnalyzerTest, AggregationCycleIsReportedAsNegationCycle) {
  AnalysisReport report = AnalyzeProgramText(
      "base cost(S, D, C).\n"
      "total(S, M) :- groupby(total(S, C), [S], M = sum(C)).\n"
      "total(S, C) :- cost(S, D, C).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kNegationCycle);
  EXPECT_TRUE(MessageContains(d, "negation or aggregation")) << d.message;
  EXPECT_TRUE(MessageContains(d, "total")) << d.message;
}

TEST(AnalyzerTest, StratifiedNegationIsNotACycle) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y). "
      "untc(X, Y) :- link(X, X2) & link(Y, Y2) & !tc(X, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kNegationCycle)) << report.ToString();
}

// Program::Analyze()'s own error message also names the cycle (the analyzer
// and the fail-fast path share the witness search).
TEST(AnalyzerTest, ProgramAnalyzeErrorNamesTheCycle) {
  Result<Program> program = ParseProgramUnanalyzed(
      "base link(S, D). "
      "win(X) :- link(X, Y) & !lose(Y). "
      "lose(X) :- link(X, Y) & !win(Y).");
  ASSERT_TRUE(program.ok());
  Status status = program->Analyze();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("cycle:"), std::string::npos)
      << status.message();
}

// ---------------------------------------------------------------------------
// Catalog diagnostics: arity-mismatch, base-redefined, undefined-predicate,
// unused-predicate.

TEST(AnalyzerTest, ArityMismatchAgainstDeclaration) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "confused(X) :- link(X).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kArityMismatch);
  EXPECT_EQ(d.predicate, "link");
  EXPECT_EQ(d.line, 2);
}

TEST(AnalyzerTest, BaseRedefinedByRuleHead) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "link(X, Y) :- link(Y, X).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kBaseRedefined);
  EXPECT_EQ(d.predicate, "link");
}

TEST(AnalyzerTest, UndefinedPredicateInBody) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "haunted(X) :- link(X, Y) & ghost(Y).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kUndefinedPredicate);
  EXPECT_EQ(d.predicate, "ghost");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
}

TEST(AnalyzerTest, UnusedBasePredicateIsWarnedAtItsDeclaration) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "base lonely(X).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kUnusedPredicate);
  EXPECT_EQ(d.predicate, "lonely");
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.line, 2);
}

// ---------------------------------------------------------------------------
// duplicate-rule, unreachable-rule, cartesian-product-join.

TEST(AnalyzerTest, AlphaEquivalentRulesAreDuplicates) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "hop(A, B) :- link(A, C) & link(C, B).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kDuplicateRule);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.line, 3);  // The second occurrence is the duplicate.
}

TEST(AnalyzerTest, DistinctRulesAreNotDuplicates) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y). "
      "hop(X, Y) :- link(X, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kDuplicateRule)) << report.ToString();
}

TEST(AnalyzerTest, ConstantFalseComparisonMakesRuleUnreachable) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "never(X) :- link(X, Y) & 1 > 2.\n");
  Diagnostic d = MustFindOne(report, DiagCode::kUnreachableRule);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.line, 2);
}

TEST(AnalyzerTest, RuleOverProvablyEmptyPredicateIsUnreachable) {
  // `mid` can never hold tuples (its only rule is constant-false), so the
  // rule reading it is transitively unreachable too.
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "mid(X) :- link(X, Y) & 1 = 2.\n"
      "top(X) :- mid(X) & link(X, Y).\n");
  EXPECT_EQ(report.WithCode(DiagCode::kUnreachableRule).size(), 2u)
      << report.ToString();
}

TEST(AnalyzerTest, DisconnectedSubgoalsAreACartesianProduct) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"
      "pairs(X, Y) :- link(X, X2) & link(Y, Y2).\n");
  Diagnostic d = MustFindOne(report, DiagCode::kCartesianProductJoin);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.line, 2);
}

TEST(AnalyzerTest, EqualityComparisonConnectsTheJoin) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "same(X, Y) :- link(X, X2) & link(Y, Y2) & X = Y.");
  EXPECT_FALSE(report.Has(DiagCode::kCartesianProductJoin))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Parse errors surface as diagnostics (with the reported line).

TEST(AnalyzerTest, ParseErrorBecomesADiagnostic) {
  AnalysisReport report =
      AnalyzeProgramText("base link(S, D). hop(X, Y) :- ");
  Diagnostic d = MustFindOne(report, DiagCode::kParseError);
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_TRUE(report.HasErrors());
}

// ---------------------------------------------------------------------------
// The showcase of everything at once: one broken program, all codes, sorted
// by source location.

TEST(AnalyzerTest, ShowcaseProgramReportsAllCodesInLineOrder) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D).\n"                             // 1
      "base lonely(X).\n"                              // 2: unused
      "bad(S, D2) :- link(S, S2).\n"                   // 3: unsafe
      "win(X) :- link(X, Y) & !lose(Y).\n"             // 4: negation cycle
      "lose(X) :- link(X, Y) & !win(Y).\n"             // 5
      "haunted(X) :- link(X, Y) & ghost(Y).\n"         // 6: undefined
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"        // 7
      "hop(A, B) :- link(A, C) & link(C, B).\n"        // 8: duplicate
      "pairs(X, Y) :- link(X, X2) & link(Y, Y2).\n"    // 9: cartesian
      "never(X) :- link(X, Y) & 1 > 2.\n"              // 10: unreachable
      "confused(X) :- link(X).\n");                    // 11: arity
  for (DiagCode code :
       {DiagCode::kUnusedPredicate, DiagCode::kUnsafeRule,
        DiagCode::kNegationCycle, DiagCode::kUndefinedPredicate,
        DiagCode::kDuplicateRule, DiagCode::kCartesianProductJoin,
        DiagCode::kUnreachableRule, DiagCode::kArityMismatch}) {
    EXPECT_TRUE(report.Has(code))
        << "missing [" << DiagCodeName(code) << "], report:\n"
        << report.ToString();
  }
  // >= 7 distinct codes, each located at a source line (rule-level).
  std::vector<int> lines;
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_GT(d.line, 0) << d.ToString();
    lines.push_back(d.line);
  }
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
}

// ---------------------------------------------------------------------------
// Strategy advisor: per-view classification and recommendation.

TEST(AdvisorTest, NonrecursiveProgramRecommendsCounting) {
  Program program = MustParseProgram(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y).");
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_FALSE(advice.program_recursive);
  EXPECT_EQ(advice.recommended, Strategy::kCounting);
  ASSERT_EQ(advice.views.size(), 1u);
  EXPECT_EQ(advice.views[0].name, "hop");
  EXPECT_FALSE(advice.views[0].recursive);
  EXPECT_EQ(advice.views[0].recommended, Strategy::kCounting);
}

TEST(AdvisorTest, RecursiveProgramRecommendsDRed) {
  Program program = MustParseProgram(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y). "
      "reach(X) :- tc(a, X).");
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_TRUE(advice.program_recursive);
  EXPECT_EQ(advice.recommended, Strategy::kDRed);
  for (const ViewClassification& view : advice.views) {
    // `reach` depends on recursive `tc`, so both inherit DRed.
    EXPECT_TRUE(view.recursive) << view.name;
    EXPECT_EQ(view.recommended, Strategy::kDRed) << view.name;
  }
}

TEST(AdvisorTest, NegationAndAggregationArePropagatedToDependents) {
  Program program = MustParseProgram(
      "base link(S, D). base cost(S, D, C). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y). "
      "nohop(X, Y) :- link(X, X2) & link(Y2, Y) & !hop(X, Y). "
      "agg(S, M) :- groupby(cost(S, D, C), [S], M = min(C)). "
      "both(X, M) :- nohop(X, X) & agg(X, M).");
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_TRUE(advice.program_uses_negation);
  EXPECT_TRUE(advice.program_uses_aggregation);
  for (const ViewClassification& view : advice.views) {
    if (view.name == "both") {
      EXPECT_TRUE(view.uses_negation);
      EXPECT_TRUE(view.uses_aggregation);
    }
    if (view.name == "hop") {
      EXPECT_FALSE(view.uses_negation);
      EXPECT_FALSE(view.uses_aggregation);
    }
  }
}

// ---------------------------------------------------------------------------
// CheckStrategyChoice: one test per paper precondition.

constexpr const char* kRecursiveText =
    "base link(S, D). "
    "tc(X, Y) :- link(X, Y). "
    "tc(X, Y) :- link(X, Z) & tc(Z, Y).";
constexpr const char* kNonrecursiveText =
    "base link(S, D). "
    "hop(X, Y) :- link(X, Z) & link(Z, Y).";

TEST(AdvisorTest, CountingOnRecursiveProgramIsAnError) {
  Program program = MustParseProgram(kRecursiveText);
  AnalysisReport report =
      CheckStrategyChoice(program, Strategy::kCounting, Semantics::kSet);
  Diagnostic d = MustFindOne(report, DiagCode::kStrategyMismatch);
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_TRUE(MessageContains(d, "nonrecursive views only")) << d.message;
  EXPECT_TRUE(MessageContains(d, "'tc'")) << d.message;
  EXPECT_TRUE(MessageContains(d, "Section 4")) << d.message;
}

TEST(AdvisorTest, DRedUnderDuplicateSemanticsIsAnError) {
  Program program = MustParseProgram(kNonrecursiveText);
  AnalysisReport report =
      CheckStrategyChoice(program, Strategy::kDRed, Semantics::kDuplicate);
  std::vector<Diagnostic> mismatches =
      report.WithCode(DiagCode::kStrategyMismatch);
  ASSERT_FALSE(mismatches.empty());
  EXPECT_TRUE(report.HasErrors()) << report.ToString();
  EXPECT_TRUE(MessageContains(mismatches.front(), "set semantics only"))
      << mismatches.front().message;
}

TEST(AdvisorTest, PFUnderDuplicateSemanticsIsAnError) {
  Program program = MustParseProgram(kNonrecursiveText);
  AnalysisReport report =
      CheckStrategyChoice(program, Strategy::kPF, Semantics::kDuplicate);
  EXPECT_TRUE(report.HasErrors()) << report.ToString();
}

TEST(AdvisorTest, RecursiveCountingUnderSetSemanticsIsAnError) {
  Program program = MustParseProgram(kRecursiveText);
  AnalysisReport report = CheckStrategyChoice(
      program, Strategy::kRecursiveCounting, Semantics::kSet);
  EXPECT_TRUE(report.HasErrors()) << report.ToString();
}

TEST(AdvisorTest, DuplicateSemanticsOnRecursiveProgramNeedsSection8) {
  // Counting's duplicate semantics cannot maintain a recursive program;
  // recursive counting (Section 8) is the only duplicate-preserving option.
  Program program = MustParseProgram(kRecursiveText);
  AnalysisReport counting =
      CheckStrategyChoice(program, Strategy::kCounting, Semantics::kDuplicate);
  EXPECT_TRUE(counting.HasErrors()) << counting.ToString();
  AnalysisReport rc = CheckStrategyChoice(
      program, Strategy::kRecursiveCounting, Semantics::kDuplicate);
  EXPECT_FALSE(rc.HasErrors()) << rc.ToString();
}

TEST(AdvisorTest, DRedOnNonrecursiveProgramIsOnlyAWarning) {
  Program program = MustParseProgram(kNonrecursiveText);
  AnalysisReport report =
      CheckStrategyChoice(program, Strategy::kDRed, Semantics::kSet);
  Diagnostic d = MustFindOne(report, DiagCode::kStrategyMismatch);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_FALSE(report.HasErrors());
}

TEST(AdvisorTest, RecomputeIsAlwaysLegalButWarned) {
  Program program = MustParseProgram(kRecursiveText);
  AnalysisReport report =
      CheckStrategyChoice(program, Strategy::kRecompute, Semantics::kSet);
  Diagnostic d = MustFindOne(report, DiagCode::kStrategyMismatch);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_FALSE(report.HasErrors());
}

TEST(AdvisorTest, AutoEmitsANoteAndNoErrors) {
  Program recursive = MustParseProgram(kRecursiveText);
  AnalysisReport report =
      CheckStrategyChoice(recursive, Strategy::kAuto, Semantics::kSet);
  EXPECT_FALSE(report.HasErrors()) << report.ToString();
  Diagnostic d = MustFindOne(report, DiagCode::kStrategyMismatch);
  EXPECT_EQ(d.severity, DiagSeverity::kNote);
  EXPECT_TRUE(MessageContains(d, "auto resolves to dred")) << d.message;

  Program nonrecursive = MustParseProgram(kNonrecursiveText);
  AnalysisReport report2 =
      CheckStrategyChoice(nonrecursive, Strategy::kAuto, Semantics::kSet);
  EXPECT_FALSE(report2.HasErrors()) << report2.ToString();
  EXPECT_TRUE(MessageContains(
      MustFindOne(report2, DiagCode::kStrategyMismatch),
      "auto resolves to counting"));
}

TEST(AdvisorTest, MatchingChoicesAreQuiet) {
  Program nonrec = MustParseProgram(kNonrecursiveText);
  EXPECT_TRUE(
      CheckStrategyChoice(nonrec, Strategy::kCounting, Semantics::kSet)
          .empty());
  Program rec = MustParseProgram(kRecursiveText);
  EXPECT_TRUE(
      CheckStrategyChoice(rec, Strategy::kDRed, Semantics::kSet).empty());
}

// ---------------------------------------------------------------------------
// ViewManager::Create surfaces strategy-mismatch errors as
// kFailedPrecondition, with the advisor's explanation.

TEST(ViewManagerStrategyTest, CountingOnRecursiveProgramIsRejected) {
  Result<std::unique_ptr<ViewManager>> manager =
      ViewManager::CreateFromText(
          kRecursiveText, testing_util::ManagerOptions(Strategy::kCounting));
  ASSERT_FALSE(manager.ok());
  EXPECT_EQ(manager.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(manager.status().message().find("strategy precondition"),
            std::string::npos)
      << manager.status().message();
  EXPECT_NE(manager.status().message().find("'tc'"), std::string::npos)
      << manager.status().message();
}

TEST(ViewManagerStrategyTest, DRedUnderDuplicateSemanticsIsRejected) {
  Result<std::unique_ptr<ViewManager>> manager = ViewManager::CreateFromText(
      kNonrecursiveText,
      testing_util::ManagerOptions(Strategy::kDRed, Semantics::kDuplicate));
  ASSERT_FALSE(manager.ok());
  EXPECT_EQ(manager.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ViewManagerStrategyTest, RecursiveCountingUnderSetSemanticsIsRejected) {
  Result<std::unique_ptr<ViewManager>> manager = ViewManager::CreateFromText(
      kRecursiveText,
      testing_util::ManagerOptions(Strategy::kRecursiveCounting,
                                   Semantics::kSet));
  ASSERT_FALSE(manager.ok());
  EXPECT_EQ(manager.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ViewManagerStrategyTest, HigherOrderOnRecursiveProgramIsRejected) {
  Result<std::unique_ptr<ViewManager>> manager = ViewManager::CreateFromText(
      kRecursiveText, testing_util::ManagerOptions(Strategy::kHigherOrder));
  ASSERT_FALSE(manager.ok());
  EXPECT_EQ(manager.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(manager.status().message().find("nonrecursive"),
            std::string::npos)
      << manager.status().message();
}

TEST(ViewManagerStrategyTest, WarningsDoNotBlockCreation) {
  // DRed on a nonrecursive program is legal (merely unadvised).
  Result<std::unique_ptr<ViewManager>> manager =
      ViewManager::CreateFromText(
          kNonrecursiveText, testing_util::ManagerOptions(Strategy::kDRed));
  IVM_EXPECT_OK(manager.status());
}

// ---------------------------------------------------------------------------
// Cost/cardinality lints (IVM012..IVM016): one positive and one negative
// case per rule.

TEST(CostLintTest, WideJoinFiresAtFiveSubgoals) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "p5(A, F) :- link(A, B) & link(B, C) & link(C, D) & link(D, E) & "
      "link(E, F).");
  Diagnostic d = MustFindOne(report, DiagCode::kWideJoin);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_TRUE(MessageContains(d, "5 subgoals")) << d.message;
}

TEST(CostLintTest, FourSubgoalJoinIsNotWide) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "p4(A, E) :- link(A, B) & link(B, C) & link(C, D) & link(D, E).");
  EXPECT_FALSE(report.Has(DiagCode::kWideJoin)) << report.ToString();
}

TEST(CostLintTest, NonlinearRecursionFlagged) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- tc(X, Z) & tc(Z, Y).");
  Diagnostic d = MustFindOne(report, DiagCode::kNonlinearRecursion);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.predicate, "tc");
}

TEST(CostLintTest, LinearRecursionIsNotNonlinear) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kNonlinearRecursion)) << report.ToString();
}

TEST(CostLintTest, MutualRecursionWithOneRecursiveSubgoalPerRuleIsLinear) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "even(X, Y) :- link(X, Y). "
      "even(X, Y) :- odd(X, Z) & link(Z, Y). "
      "odd(X, Y) :- even(X, Z) & link(Z, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kNonlinearRecursion)) << report.ToString();
}

TEST(CostLintTest, AggregateThroughRecursionFlagged) {
  AnalysisReport report = AnalyzeProgramText(
      "base edge(S, D). "
      "reach(X, Y) :- edge(X, Y). "
      "reach(X, Y) :- reach(X, Z) & edge(Z, Y). "
      "fanout(X, N) :- groupby(reach(X, Y), [X], N = count(Y)).");
  Diagnostic d = MustFindOne(report, DiagCode::kAggregateThroughRecursion);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_TRUE(MessageContains(d, "'reach'")) << d.message;
}

TEST(CostLintTest, AggregateOverNonrecursivePredicateIsQuiet) {
  AnalysisReport report = AnalyzeProgramText(
      "base cost(S, D, C). "
      "best(S, M) :- groupby(cost(S, D, C), [S], M = min(C)).");
  EXPECT_FALSE(report.Has(DiagCode::kAggregateThroughRecursion))
      << report.ToString();
}

TEST(CostLintTest, DeltaExplosionPredictedForCartesianBlowup) {
  AnalysisReport report = AnalyzeProgramText(
      "base a(X). base b(X). base c(X). base d(X). "
      "combo(W, X, Y, Z) :- a(W) & b(X) & c(Y) & d(Z).");
  Diagnostic d = MustFindOne(report, DiagCode::kDeltaExplosion);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_TRUE(MessageContains(d, "derived tuples")) << d.message;
}

TEST(CostLintTest, SharedJoinVariablesDoNotExplode) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kDeltaExplosion)) << report.ToString();
}

TEST(CostLintTest, InlinableViewNoteForOnceReadSingleRuleView) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y). "
      "tri(X, Y) :- hop(X, Z) & link(Z, Y).");
  Diagnostic d = MustFindOne(report, DiagCode::kInlinableView);
  EXPECT_EQ(d.severity, DiagSeverity::kNote);
  EXPECT_EQ(d.predicate, "hop");
}

TEST(CostLintTest, ViewReadTwiceIsNotInlinable) {
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y). "
      "tri(X, Y) :- hop(X, Z) & link(Z, Y). "
      "quad(X, Y) :- hop(X, Z) & hop(Z, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kInlinableView)) << report.ToString();
}

TEST(CostLintTest, NegatedViewIsNotInlinable) {
  // The sole read is through negation: inlining would change the semantics.
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y). "
      "nohop(X, Y) :- link(X, Z) & link(Z2, Y) & !hop(X, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kInlinableView)) << report.ToString();
}

TEST(CostLintTest, HigherOrderAdvantageNoteForShrinkingJoin) {
  // Triangle query: the intermediate two-way joins (~1.1e4 rows under the
  // default parameters) dwarf the ~1e3-row result, so counting's delta
  // rules redo an order of magnitude more work than higher-order lookups
  // into materialized remainders would touch.
  AnalysisReport report = AnalyzeProgramText(
      "base follows(S, D). base mentions(S, D). base replies(S, D). "
      "triangle(X, Y) :- follows(X, Y) & mentions(Y, Z) & replies(Z, X).");
  Diagnostic d = MustFindOne(report, DiagCode::kHigherOrderAdvantage);
  EXPECT_EQ(d.severity, DiagSeverity::kNote);
  EXPECT_TRUE(MessageContains(d, "higher-order maintenance")) << d.message;
  EXPECT_TRUE(MessageContains(d, "Strategy::kHigherOrder")) << d.message;
  EXPECT_TRUE(MessageContains(d, "rows touched")) << d.message;
}

TEST(CostLintTest, HigherOrderAdvantageQuietForRecursion) {
  // kHigherOrder rejects recursive programs, so the note must never point
  // at one.
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kHigherOrderAdvantage))
      << report.ToString();
}

TEST(CostLintTest, HigherOrderAdvantageQuietForBinaryChain) {
  // A 2-way join: the final join dominates its own intermediates, so
  // remainder lookups save ~nothing (and a 2-atom rule has no multiway
  // remainder worth materializing).
  AnalysisReport report = AnalyzeProgramText(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y).");
  EXPECT_FALSE(report.Has(DiagCode::kHigherOrderAdvantage))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// The cost model itself (ComputeProgramStats): hand-checked estimates under
// the default parameters (1000 base rows, 100 distinct values per column).

TEST(ProgramStatsTest, TransitiveClosureEstimates) {
  Program program = MustParseProgram(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y).");
  ProgramStats stats = ComputeProgramStats(program);

  // tc saturates at its arity cap: 100^2 = 10^4 rows.
  const PredicateCostStats& tc =
      stats.predicates[static_cast<size_t>(program.Lookup("tc").value())];
  EXPECT_TRUE(tc.recursive);
  EXPECT_DOUBLE_EQ(tc.cardinality, 1e4);

  // Rule 2 joins link (1000) with tc (10^4) on one shared variable:
  // full = 1000 * 10^4 / 100 = 10^5 rows; amplification =
  // full/|link| + full/|tc| = 100 + 10 = 110.
  EXPECT_DOUBLE_EQ(stats.rules[1].delta_amplification, 110.0);
  EXPECT_EQ(stats.rules[1].num_positive, 2);
  EXPECT_EQ(stats.rules[1].recursive_subgoals, 1);
  EXPECT_DOUBLE_EQ(stats.max_delta_amplification, 110.0);
}

TEST(ProgramStatsTest, BindingEqualityDoesNotShrinkTheJoin) {
  // C = C1 + C2 binds C (it appears nowhere else): selectivity 1, not 1/100.
  Program with_binding = MustParseProgram(
      "base cost(S, D, C). "
      "two(X, Y, C) :- cost(X, Z, C1) & cost(Z, Y, C2) & C = C1 + C2.");
  Program without = MustParseProgram(
      "base cost(S, D, C). "
      "two(X, Y, C1) :- cost(X, Z, C1) & cost(Z, Y, C2).");
  ProgramStats a = ComputeProgramStats(with_binding);
  ProgramStats b = ComputeProgramStats(without);
  EXPECT_DOUBLE_EQ(a.rules[0].out_rows, b.rules[0].out_rows);
}

TEST(ProgramStatsTest, UnaryPredicatesCapAtDistinctValues) {
  Program program = MustParseProgram(
      "base a(X). "
      "self(X) :- a(X).");
  ProgramStats stats = ComputeProgramStats(program);
  const PredicateCostStats& a =
      stats.predicates[static_cast<size_t>(program.Lookup("a").value())];
  EXPECT_DOUBLE_EQ(a.cardinality, 100.0);  // min(1000, 100^1)
}

// ---------------------------------------------------------------------------
// Advisor cost signals and the semantics-aware recommendation.

TEST(AdvisorTest, AdviceCarriesCostModelSignals) {
  Program program = MustParseProgram(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y).");
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_DOUBLE_EQ(advice.max_delta_amplification, 110.0);
  EXPECT_GT(advice.estimated_delta_cost, 0.0);
  EXPECT_FALSE(advice.recommend_parallel);
  EXPECT_NE(advice.Summary().find("estimated delta cost"), std::string::npos);
}

TEST(AdvisorTest, WideJoinShapeRecommendsParallelExecution) {
  Program program = MustParseProgram(
      "base link(S, D). "
      "p5(A, F) :- link(A, B) & link(B, C) & link(C, D) & link(D, E) & "
      "link(E, F).");
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_TRUE(advice.recommend_parallel);
}

TEST(AdvisorTest, HeavyEstimatedCostRecommendsParallelExecution) {
  // 4 subgoals — under the wide-join boundary — but a cartesian shape whose
  // estimated per-change work clears the cost threshold on its own.
  Program program = MustParseProgram(
      "base a(X). base b(X). base c(X). base d(X). "
      "combo(W, X, Y, Z) :- a(W) & b(X) & c(Y) & d(Z).");
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_TRUE(advice.recommend_parallel);
}

TEST(AdvisorTest, SemanticsAwareOverloadRecommendsRecursiveCounting) {
  Program program = MustParseProgram(
      "base link(S, D). "
      "tc(X, Y) :- link(X, Y). "
      "tc(X, Y) :- link(X, Z) & tc(Z, Y).");
  // Set semantics: same as the plain overload — DRed for recursion.
  EXPECT_EQ(AdviseStrategy(program, Semantics::kSet).recommended,
            Strategy::kDRed);
  // Duplicate semantics: DRed cannot maintain bags; Section 8 takes over.
  StrategyAdvice advice = AdviseStrategy(program, Semantics::kDuplicate);
  EXPECT_EQ(advice.recommended, Strategy::kRecursiveCounting);
  for (const ViewClassification& v : advice.views) {
    EXPECT_EQ(v.recommended, Strategy::kRecursiveCounting) << v.name;
  }
}

TEST(AdvisorTest, AdviceCarriesHigherOrderEstimate) {
  Program program = MustParseProgram(
      "base follows(S, D). base mentions(S, D). base replies(S, D). "
      "triangle(X, Y) :- follows(X, Y) & mentions(Y, Z) & replies(Z, X).");
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_GT(advice.higher_order_estimated_cost, 0.0);
  // The shrinking triangle join is exactly where lookups beat delta joins:
  // counting's work (intermediates included) dwarfs the lookup estimate.
  ProgramStats stats = ComputeProgramStats(program);
  EXPECT_LT(2.0 * advice.higher_order_estimated_cost,
            stats.total_delta_join_work);
  EXPECT_NE(advice.Summary().find("higher-order estimated cost"),
            std::string::npos)
      << advice.Summary();
}

TEST(AdvisorTest, RecursiveSummaryOmitsHigherOrderEstimate) {
  // kHigherOrder is nonrecursive-only; the summary must not advertise it
  // for a program the strategy would reject.
  Program program = MustParseProgram(kRecursiveText);
  StrategyAdvice advice = AdviseStrategy(program);
  EXPECT_EQ(advice.Summary().find("higher-order estimated cost"),
            std::string::npos)
      << advice.Summary();
}

TEST(AdvisorTest, SemanticsAwareOverloadKeepsCountingWhenNonrecursive) {
  Program program = MustParseProgram(
      "base link(S, D). "
      "hop(X, Y) :- link(X, Z) & link(Z, Y).");
  EXPECT_EQ(AdviseStrategy(program, Semantics::kDuplicate).recommended,
            Strategy::kCounting);
}

}  // namespace
}  // namespace ivm
