#include "core/recursive_counting.h"

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "eval/evaluator.h"
#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

constexpr const char* kTc =
    "base edge(X, Y).\n"
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Y) :- path(X, Z) & edge(Z, Y).";

std::unique_ptr<RecursiveCountingMaintainer> MakeTc(const std::string& facts) {
  auto m = RecursiveCountingMaintainer::Create(MustParseProgram(kTc));
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  testing_util::MustLoadFacts(&db, facts);
  (*m)->Initialize(db).CheckOK();
  return std::move(m).value();
}

TEST(RecursiveCountingTest, InitialCountsArePathCounts) {
  // Diamond: 0->1->3, 0->2->3, 3->4. path(0,3) has 2 derivations... note
  // that with the linear rule, path(0,4) also has 2 (one per path to 3).
  auto m = MakeTc("edge(0,1). edge(1,3). edge(0,2). edge(2,3). edge(3,4).");
  const Relation& path = *m->GetRelation("path").value();
  EXPECT_EQ(path.Count(Tup(0, 1)), 1);
  EXPECT_EQ(path.Count(Tup(0, 3)), 2);
  EXPECT_EQ(path.Count(Tup(0, 4)), 2);
  EXPECT_EQ(path.Count(Tup(3, 4)), 1);
}

TEST(RecursiveCountingTest, DeletionNeedsNoRederivation) {
  auto m = MakeTc("edge(0,1). edge(1,3). edge(0,2). edge(2,3). edge(3,4).");
  ChangeSet changes;
  changes.Delete("edge", Tup(0, 1));
  ChangeSet out = m->Apply(changes).value();
  // path(0,3) and path(0,4) lose one derivation each but stay; path(0,1)
  // disappears.
  EXPECT_EQ(out.Delta("path").Count(Tup(0, 1)), -1);
  EXPECT_EQ(out.Delta("path").Count(Tup(0, 3)), -1);
  const Relation& path = *m->GetRelation("path").value();
  EXPECT_FALSE(path.Contains(Tup(0, 1)));
  EXPECT_EQ(path.Count(Tup(0, 3)), 1);
  EXPECT_EQ(path.Count(Tup(0, 4)), 1);
}

TEST(RecursiveCountingTest, InsertionPropagatesTransitively) {
  auto m = MakeTc("edge(0,1). edge(2,3).");
  ChangeSet changes;
  changes.Insert("edge", Tup(1, 2));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("path").Count(Tup(0, 3)), 1);
  EXPECT_EQ(out.Delta("path").size(), 4u);
}

TEST(RecursiveCountingTest, MatchesSetOracleOnDags) {
  // On acyclic data the set projection of the counted fixpoint equals the
  // set-semantics fixpoint.
  auto m = MakeTc("edge(0,1). edge(0,2). edge(1,3). edge(2,3). edge(3,4). edge(4,5).");
  Program oracle_prog = MustParseProgram(kTc);
  struct Op { bool ins; int a, b; };
  const Op ops[] = {
      {false, 0, 1}, {true, 1, 4}, {false, 3, 4}, {true, 0, 1}, {true, 2, 4},
  };
  for (const Op& op : ops) {
    ChangeSet changes;
    if (op.ins) {
      changes.Insert("edge", Tup(op.a, op.b));
    } else {
      changes.Delete("edge", Tup(op.a, op.b));
    }
    auto r = m->Apply(changes);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    Database db;
    db.CreateRelation("edge", 2).CheckOK();
    db.mutable_relation("edge") = *m->GetRelation("edge").value();
    Evaluator ev(oracle_prog, {Semantics::kSet, false});
    std::map<PredicateId, Relation> views;
    ev.EvaluateAll(db, &views).CheckOK();
    EXPECT_TRUE(m->GetRelation("path").value()->SameSet(
        views.at(oracle_prog.Lookup("path").value())));
  }
}

TEST(RecursiveCountingTest, DivergenceOnCyclesIsDetected) {
  // A cycle gives every path tuple infinitely many derivations; the paper
  // warns "counting may not terminate on some views" — we must detect it.
  auto m = RecursiveCountingMaintainer::Create(
      MustParseProgram(kTc),
      RecursiveCountingMaintainer::Options{/*max_steps=*/5000});
  ASSERT_TRUE(m.ok());
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  testing_util::MustLoadFacts(&db, "edge(0,1). edge(1,2). edge(2,0).");
  Status s = (*m)->Initialize(db);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(RecursiveCountingTest, NonrecursiveProgramsAgreeWithCounting) {
  auto m = RecursiveCountingMaintainer::Create(MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).")).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  m->Initialize(db).CheckOK();
  EXPECT_EQ(m->GetRelation("hop").value()->Count(Tup("a", "c")), 2);
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "c")), -1);
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "e")), -1);
  EXPECT_EQ(m->GetRelation("hop").value()->Count(Tup("a", "c")), 1);
}

TEST(RecursiveCountingTest, AggregationOverRecursiveCounts) {
  auto m = RecursiveCountingMaintainer::Create(MustParseProgram(
      "base edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- path(X, Z) & edge(Z, Y).\n"
      "reach(X, N) :- groupby(path(X, Y), [X], N = count(*)).")).value();
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  testing_util::MustLoadFacts(&db, "edge(0,1). edge(1,2). edge(2,3).");
  m->Initialize(db).CheckOK();
  // Under duplicate semantics COUNT counts derivations; on a chain each path
  // tuple has exactly one derivation, so reach(0) = 3.
  EXPECT_TRUE(m->GetRelation("reach").value()->Contains(Tup(0, 3)));

  ChangeSet changes;
  changes.Delete("edge", Tup(2, 3));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("reach").Count(Tup(0, 3)), -1);
  EXPECT_EQ(out.Delta("reach").Count(Tup(0, 2)), 1);
}

TEST(RecursiveCountingTest, NegationOverRecursion) {
  auto m = RecursiveCountingMaintainer::Create(MustParseProgram(
      "base edge(X, Y). base target(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- path(X, Z) & edge(Z, Y).\n"
      "unreachable(X, Y) :- target(X, Y) & !path(X, Y).")).value();
  Database db;
  testing_util::MustLoadFacts(&db, "edge(0,1). edge(1,2). target(0,2). target(0,3).");
  m->Initialize(db).CheckOK();
  EXPECT_EQ(m->GetRelation("unreachable").value()->ToString(), "{(0, 3)}");

  ChangeSet changes;
  changes.Delete("edge", Tup(1, 2));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("unreachable").Count(Tup(0, 2)), 1);
}

TEST(RecursiveCountingTest, RejectsBadDeletions) {
  auto m = MakeTc("edge(0,1).");
  ChangeSet changes;
  changes.Delete("edge", Tup(9, 9));
  EXPECT_EQ(m->Apply(changes).status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecursiveCountingTest, ViaViewManagerStrategy) {
  auto vm = ViewManager::CreateFromText(
      kTc, testing_util::ManagerOptions(Strategy::kRecursiveCounting,
                                        Semantics::kDuplicate));
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();
  Database db;
  db.CreateRelation("edge", 2).CheckOK();
  testing_util::MustLoadFacts(&db, "edge(0,1). edge(1,2).");
  IVM_ASSERT_OK((*vm)->Initialize(db));
  ChangeSet changes;
  changes.Insert("edge", Tup(2, 3));
  EXPECT_EQ((*vm)->Apply(changes).value().Delta("path").size(), 3u);
  // kSet is rejected for this strategy.
  EXPECT_FALSE(ViewManager::CreateFromText(
                   kTc, testing_util::ManagerOptions(
                            Strategy::kRecursiveCounting, Semantics::kSet))
                   .ok());
}

}  // namespace
}  // namespace ivm
