// Runtime exercises for the capability-annotated concurrency primitives
// (common/mutex.h) and the subsystems whose lock discipline they enforce.
// The compile-time half of the story lives in thread_safety_negative.cc:
// tools/run_static_analysis.sh compiles that file under clang with
// -Werror=thread-safety and requires the build to FAIL, proving the
// annotations actually fire. It is never part of the test binary.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/intern.h"
#include "txn/failpoint.h"

namespace ivm {
namespace {

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread t([&mu, &acquired]() {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  t.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
}

TEST(MutexTest, GuardedCounterIsRaceFreeUnderContention) {
  struct Guarded {
    Mutex mu;
    int64_t value IVM_GUARDED_BY(mu) = 0;
  } state;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&state]() {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&state.mu);
        ++state.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.value, int64_t{kThreads} * kIncrements);
}

TEST(CondVarTest, PredicateWaitSeesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready IVM_GUARDED_BY(mu) = false;
  std::thread notifier([&]() {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    cv.Wait(&mu, [&]() IVM_REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  int released IVM_GUARDED_BY(mu) = 0;
  bool go IVM_GUARDED_BY(mu) = false;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&]() {
      MutexLock lock(&mu);
      cv.Wait(&mu, [&]() IVM_REQUIRES(mu) { return go; });
      ++released;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(released, kWaiters);
}

// The pool's own protocol is covered by exec_test / parallel_determinism_test;
// here we only pin that the annotated rewrite still runs real batches.
TEST(ThreadPoolTest, AnnotatedPoolRunsBatches) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  for (int round = 0; round < 10; ++round) {
    std::vector<int> hits(100, 0);
    pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndSpans) {
  MetricsRegistry metrics;
  constexpr int kThreads = 4;
  constexpr int kNames = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t]() {
      for (int i = 0; i < kNames; ++i) {
        // Same name set from every thread: the registry must dedupe under
        // its lock and hand back stable nodes.
        metrics.counter("c" + std::to_string(i));
        metrics.gauge("g" + std::to_string(i))->Set(t);
        { TraceSpan span(&metrics, "ts.span"); }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int counters = 0;
  metrics.ForEachCounter([&](const std::string&, uint64_t) { ++counters; });
  EXPECT_EQ(counters, kNames);
  const LatencyHistogram* h = metrics.FindHistogram("span.ts.span");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), uint64_t{kThreads} * kNames);
}

TEST(InternPoolTest, ConcurrentInternDedupes) {
  InternPool pool;
  constexpr int kThreads = 4;
  constexpr int kStrings = 200;
  std::vector<std::vector<InternPool::Handle>> handles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &handles, t]() {
      handles[static_cast<size_t>(t)].reserve(kStrings);
      for (int i = 0; i < kStrings; ++i) {
        handles[static_cast<size_t>(t)].push_back(
            pool.Intern("s" + std::to_string(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pool.size(), static_cast<size_t>(kStrings));
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(handles[static_cast<size_t>(t)], handles[0]);
  }
  for (int i = 0; i < kStrings; ++i) {
    EXPECT_EQ(pool.str(handles[0][static_cast<size_t>(i)]),
              "s" + std::to_string(i));
  }
}

TEST(FailpointRegistryTest, ConcurrentChecksCountEveryHit) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.DisarmAll();
  registry.ResetHitCounts();
  constexpr int kThreads = 4;
  constexpr int kChecks = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      for (int i = 0; i < kChecks; ++i) {
        ASSERT_TRUE(registry.Check("ts.concurrent").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.HitCount("ts.concurrent"),
            uint64_t{kThreads} * kChecks);
  registry.ResetHitCounts();
}

}  // namespace
}  // namespace ivm
