#include "core/deferred.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

DeferredViewManager MakeHop() {
  auto vm = ViewManager::CreateFromText(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  vm.status().CheckOK();
  Database db;
  testing_util::MustLoadFacts(&db, "link(a,b). link(b,c).");
  DeferredViewManager dvm(std::move(vm).value());
  dvm.Initialize(db).CheckOK();
  return dvm;
}

TEST(DeferredTest, StagedChangesAreInvisibleUntilRefresh) {
  DeferredViewManager dvm = MakeHop();
  ChangeSet changes;
  changes.Insert("link", Tup("c", "d"));
  dvm.Stage(changes);
  EXPECT_TRUE(dvm.dirty());
  EXPECT_EQ(dvm.staged_tuples(), 1u);
  // Stale read: hop unchanged.
  EXPECT_FALSE(dvm.GetRelation("hop").value()->Contains(Tup("b", "d")));

  ChangeSet out = dvm.Refresh().value();
  EXPECT_FALSE(dvm.dirty());
  EXPECT_EQ(out.Delta("hop").Count(Tup("b", "d")), 1);
  EXPECT_TRUE(dvm.GetRelation("hop").value()->Contains(Tup("b", "d")));
}

TEST(DeferredTest, ChurnCancelsBeforeMaintenance) {
  DeferredViewManager dvm = MakeHop();
  ChangeSet ins;
  ins.Insert("link", Tup("c", "d"));
  dvm.Stage(ins);
  ChangeSet del;
  del.Delete("link", Tup("c", "d"));
  dvm.Stage(del);
  // The two staged changes cancel: nothing to do.
  EXPECT_FALSE(dvm.dirty());
  ChangeSet out = dvm.Refresh().value();
  EXPECT_TRUE(out.empty());
}

TEST(DeferredTest, MultipleStagesMergeIntoOnePass) {
  DeferredViewManager dvm = MakeHop();
  ChangeSet a;
  a.Delete("link", Tup("a", "b"));
  dvm.Stage(a);
  ChangeSet b;
  b.Insert("link", Tup("a", "x"));
  b.Insert("link", Tup("x", "c"));
  dvm.Stage(b);
  ChangeSet out = dvm.Refresh().value();
  // hop(a,c) survives via the new route a->x->c, so as a set the view is
  // unchanged — the single merged pass sees that directly.
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(dvm.GetRelation("hop").value()->Contains(Tup("a", "c")));
}

TEST(DeferredTest, RefreshErrorKeepsStagedBuffer) {
  DeferredViewManager dvm = MakeHop();
  ChangeSet bad;
  bad.Delete("link", Tup("z", "z"));
  dvm.Stage(bad);
  EXPECT_FALSE(dvm.Refresh().ok());
  EXPECT_TRUE(dvm.dirty());  // preserved for inspection
  dvm.DiscardStaged();
  EXPECT_FALSE(dvm.dirty());
  // Still usable.
  ChangeSet good;
  good.Insert("link", Tup("c", "d"));
  dvm.Stage(good);
  IVM_EXPECT_OK(dvm.RefreshIfDirty());
  EXPECT_TRUE(dvm.GetRelation("hop").value()->Contains(Tup("b", "d")));
}

TEST(DeferredTest, RefreshIfDirtyNoopWhenClean) {
  DeferredViewManager dvm = MakeHop();
  IVM_EXPECT_OK(dvm.RefreshIfDirty());
}

TEST(DeferredTest, StagedDeltaInspection) {
  DeferredViewManager dvm = MakeHop();
  ChangeSet changes;
  changes.Insert("link", Tup("p", "q"), 2);
  dvm.Stage(changes);
  EXPECT_EQ(dvm.StagedDelta("link").Count(Tup("p", "q")), 2);
  EXPECT_TRUE(dvm.StagedDelta("hop").empty());
}

}  // namespace
}  // namespace ivm
