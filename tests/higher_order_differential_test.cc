// Differential fuzzing of Strategy::kHigherOrder against plain counting:
// generate random nonrecursive programs (the shared generator plus a
// wide-join variant that stresses the auxiliary-view machinery), random
// databases, and randomized insert/delete streams; after every batch both
// maintainers must hold *identical* relations — tuples and counts — and
// must have reported identical deltas. 100+ programs across both
// semantics; every third seed runs higher-order with a parallel executor,
// which doubles as the TSAN surface for the lookup fan-out.

#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "random_program_gen.h"
#include "test_util.h"
#include "workload/update_gen.h"

namespace ivm {
namespace {

constexpr int kNumNodes = 10;

/// Wide-join generator: chain joins of 2..4 *distinct* predicates (the
/// higher-order sweet spot — remainders decompose into interval views),
/// with occasional repeated predicates (fallback path), comparison filters,
/// and derived predicates in later bodies (auxiliary views over views).
std::string WideJoinProgramText(std::mt19937_64* rng) {
  std::ostringstream out;
  out << "base b1(X, Y). base b2(X, Y). base b3(X, Y). base b4(X, Y).\n";
  std::vector<std::string> available = {"b1", "b2", "b3", "b4"};
  std::uniform_int_distribution<int> num_views(2, 4);
  std::uniform_int_distribution<int> num_atoms(2, 4);
  std::uniform_int_distribution<int> d100(0, 99);
  const int k = num_views(*rng);
  for (int v = 1; v <= k; ++v) {
    const std::string name = "w" + std::to_string(v);
    const int n = num_atoms(*rng);
    // Pick n body predicates, distinct unless the 1-in-4 repeat coin fires
    // (repeats make the rule ineligible, exercising the fallback).
    std::vector<std::string> body;
    std::set<std::string> used;
    std::uniform_int_distribution<int> pick(
        0, static_cast<int>(available.size()) - 1);
    const bool allow_repeat = d100(*rng) < 25;
    while (static_cast<int>(body.size()) < n) {
      const std::string& cand = available[static_cast<size_t>(pick(*rng))];
      if (!allow_repeat && !used.insert(cand).second) continue;
      body.push_back(cand);
    }
    // Chain: name(X0, Xn) :- p1(X0, X1) & ... & pn(X{n-1}, Xn) [& filter].
    out << name << "(X0, X" << n << ") :- ";
    for (int i = 0; i < n; ++i) {
      if (i > 0) out << " & ";
      out << body[static_cast<size_t>(i)] << "(X" << i << ", X" << (i + 1)
          << ")";
    }
    if (d100(*rng) < 30) {
      out << ", X0 " << (d100(*rng) < 50 ? "!=" : "<") << " X" << n;
    }
    out << ".\n";
    available.push_back(name);
  }
  return out.str();
}

std::string ChangeSetToString(const ChangeSet& cs) {
  std::ostringstream out;
  for (const auto& [name, delta] : cs.deltas()) {
    if (delta.empty()) continue;
    out << name << ": " << delta.ToString() << "\n";
  }
  return out.str();
}

class HigherOrderDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(HigherOrderDifferentialTest, MatchesCountingExactly) {
  const uint64_t seed = GetParam();
  std::mt19937_64 rng(seed * 10007);
  // Even seeds: the shared generator (negation/aggregation exercise the
  // fallback); odd seeds: wide joins (auxiliary views do the work).
  const bool wide = (seed % 2) == 1;
  const std::string program_text = wide
                                       ? WideJoinProgramText(&rng)
                                       : testing_util::RandomProgramText(&rng);
  SCOPED_TRACE(program_text);
  const std::vector<std::string> base_names =
      wide ? std::vector<std::string>{"b1", "b2", "b3", "b4"}
           : std::vector<std::string>{"e1", "e2"};

  Database db;
  std::uniform_int_distribution<int> node(0, kNumNodes - 1);
  for (const std::string& name : base_names) {
    db.CreateRelation(name, 2).CheckOK();
    for (int i = 0; i < 20; ++i) {
      int a = node(rng), b = node(rng);
      if (a != b) db.mutable_relation(name).Set(Tup(a, b), 1);
    }
  }

  for (Semantics semantics : {Semantics::kSet, Semantics::kDuplicate}) {
    auto ho_options =
        testing_util::ManagerOptions(Strategy::kHigherOrder, semantics);
    // Every third seed fans the lookup joins out across workers — results
    // must stay content-identical (RunJoinTasks merges deterministically).
    if (seed % 3 == 0) ho_options.executor.threads = 3;
    auto ho = ViewManager::CreateFromText(program_text, ho_options);
    ASSERT_TRUE(ho.ok()) << ho.status().ToString();
    auto counting = ViewManager::CreateFromText(
        program_text,
        testing_util::ManagerOptions(Strategy::kCounting, semantics));
    ASSERT_TRUE(counting.ok()) << counting.status().ToString();
    IVM_ASSERT_OK((*ho)->Initialize(db));
    IVM_ASSERT_OK((*counting)->Initialize(db));

    std::mt19937_64 update_rng(seed * 131 +
                               (semantics == Semantics::kSet ? 0 : 1));
    for (int round = 0; round < 5; ++round) {
      ChangeSet batch;
      for (const std::string& name : base_names) {
        const Relation& current = *(*ho)->snapshot().Get(name).value();
        for (const Tuple& t : SampleTuples(current, 2, update_rng())) {
          batch.Delete(name, t);
        }
        for (int i = 0; i < 3; ++i) {
          int a = node(update_rng), b = node(update_rng);
          if (a == b) continue;
          Tuple t = Tup(a, b);
          if (batch.Delta(name).Contains(t)) continue;
          // Duplicate semantics legally re-inserts present tuples (count
          // bumps); set semantics only inserts absent ones.
          if (semantics == Semantics::kSet && current.Contains(t)) continue;
          batch.Insert(name, t);
        }
      }
      auto ho_out = (*ho)->Apply(batch);
      ASSERT_TRUE(ho_out.ok()) << ho_out.status().ToString();
      auto c_out = (*counting)->Apply(batch);
      ASSERT_TRUE(c_out.ok()) << c_out.status().ToString();

      // Exact delta equality: same relations changed, same tuples, same
      // (signed) counts.
      ASSERT_EQ(ChangeSetToString(*ho_out), ChangeSetToString(*c_out))
          << "round " << round << " semantics "
          << (semantics == Semantics::kSet ? "set" : "duplicate");

      // Exact relation equality, counts included (higher-order maintains
      // the same per-stratum derivation counts as counting).
      for (PredicateId pred : (*ho)->program().DerivedPredicates()) {
        const std::string& name = (*ho)->program().predicate(pred).name;
        const Relation& actual = *(*ho)->snapshot().Get(name).value();
        const Relation& expected = *(*counting)->snapshot().Get(name).value();
        ASSERT_EQ(actual.ToString(), expected.ToString())
            << name << " diverged in round " << round << " under "
            << (semantics == Semantics::kSet ? "set" : "duplicate")
            << " semantics";
      }
    }
  }
}

// 110 seeds x 2 generators-interleaved = 110 distinct programs, each driven
// through 5 mixed insert/delete batches under both semantics.
INSTANTIATE_TEST_SUITE_P(Seeds, HigherOrderDifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{111}));

}  // namespace
}  // namespace ivm
