#include "workload/graph_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "workload/update_gen.h"

namespace ivm {
namespace {

TEST(GraphGenTest, RandomGraphIsDeterministicAndDistinct) {
  EdgeList a = RandomGraph(50, 200, 7);
  EdgeList b = RandomGraph(50, 200, 7);
  EXPECT_EQ(a, b);
  EdgeList c = RandomGraph(50, 200, 8);
  EXPECT_NE(a, c);
  std::set<std::pair<int, int>> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), 200u);
  for (const auto& [x, y] : a) {
    EXPECT_NE(x, y);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 50);
  }
}

TEST(GraphGenTest, ChainCycleGridTreeShapes) {
  EXPECT_EQ(ChainGraph(5).size(), 4u);
  EXPECT_EQ(CycleGraph(5).size(), 5u);
  EXPECT_EQ(GridGraph(3, 4).size(), 3u * 3u + 2u * 4u);
  EXPECT_EQ(TreeGraph(7, 2).size(), 6u);
  // Tree: node 1 and 2 are children of 0.
  EdgeList t = TreeGraph(7, 2);
  EXPECT_EQ(t[0], std::make_pair(0, 1));
  EXPECT_EQ(t[1], std::make_pair(0, 2));
}

TEST(GraphGenTest, PreferentialAttachment) {
  EdgeList e = PreferentialAttachmentGraph(100, 3, 42);
  EXPECT_GT(e.size(), 100u);
  std::set<std::pair<int, int>> distinct(e.begin(), e.end());
  EXPECT_EQ(distinct.size(), e.size());
}

TEST(GraphGenTest, FillRelations) {
  Relation rel("edge", 2);
  FillEdgeRelation(ChainGraph(4), &rel);
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_TRUE(rel.Contains(Tup(0, 1)));

  Relation cost("link", 3);
  FillCostEdgeRelation(ChainGraph(4), 1, 10, 3, &cost);
  EXPECT_EQ(cost.size(), 3u);
  for (const auto& [t, c] : cost.tuples()) {
    (void)c;
    int64_t v = t[2].int_value();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
  }
}

TEST(UpdateGenTest, SampleTuples) {
  Relation rel("edge", 2);
  FillEdgeRelation(RandomGraph(30, 100, 1), &rel);
  std::vector<Tuple> sample = SampleTuples(rel, 10, 99);
  EXPECT_EQ(sample.size(), 10u);
  for (const Tuple& t : sample) EXPECT_TRUE(rel.Contains(t));
  // Deterministic.
  EXPECT_EQ(SampleTuples(rel, 10, 99), sample);
  // Asking for more than available caps out.
  EXPECT_EQ(SampleTuples(rel, 1000, 1).size(), 100u);
}

TEST(UpdateGenTest, RandomAbsentEdges) {
  Relation rel("edge", 2);
  FillEdgeRelation(ChainGraph(10), &rel);
  std::vector<Tuple> fresh = RandomAbsentEdges(rel, 10, 20, 5);
  EXPECT_EQ(fresh.size(), 20u);
  std::set<Tuple> seen;
  for (const Tuple& t : fresh) {
    EXPECT_FALSE(rel.Contains(t));
    EXPECT_TRUE(seen.insert(t).second);
  }
}

TEST(UpdateGenTest, MixedBatch) {
  Relation rel("edge", 2);
  FillEdgeRelation(RandomGraph(20, 60, 2), &rel);
  ChangeSet batch = MakeMixedEdgeBatch("edge", rel, 20, 5, 7, 11);
  int dels = 0, adds = 0;
  for (const auto& [t, c] : batch.Delta("edge").tuples()) {
    (void)t;
    if (c < 0) ++dels;
    if (c > 0) ++adds;
  }
  EXPECT_EQ(dels, 5);
  EXPECT_EQ(adds, 7);
}

}  // namespace
}  // namespace ivm
