#include "datalog/lexer.h"

#include <gtest/gtest.h>

namespace ivm {
namespace {

std::vector<TokenType> Types(const std::vector<Token>& tokens) {
  std::vector<TokenType> out;
  for (const Token& t : tokens) out.push_back(t.type);
  return out;
}

TEST(LexerTest, BasicRule) {
  auto tokens = Tokenize("hop(X, Y) :- link(X, Z) & link(Z, Y).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Types(tokens.value()),
            (std::vector<TokenType>{
                TokenType::kIdent, TokenType::kLParen, TokenType::kVariable,
                TokenType::kComma, TokenType::kVariable, TokenType::kRParen,
                TokenType::kColonDash, TokenType::kIdent, TokenType::kLParen,
                TokenType::kVariable, TokenType::kComma, TokenType::kVariable,
                TokenType::kRParen, TokenType::kAmp, TokenType::kIdent,
                TokenType::kLParen, TokenType::kVariable, TokenType::kComma,
                TokenType::kVariable, TokenType::kRParen, TokenType::kDot,
                TokenType::kEof}));
}

TEST(LexerTest, VariablesStartUppercaseOrUnderscore) {
  auto tokens = Tokenize("Xy _anon lower Mixed_case");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kVariable);
  EXPECT_EQ((*tokens)[1].type, TokenType::kVariable);
  EXPECT_EQ((*tokens)[2].type, TokenType::kIdent);
  EXPECT_EQ((*tokens)[3].type, TokenType::kVariable);
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 3.5 1e3 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 3.5);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 1000.0);
  EXPECT_EQ((*tokens)[3].int_value, 7);
}

TEST(LexerTest, IntFollowedByDotIsNotAFloat) {
  // "p(1)." must lex the final '.' as the statement terminator.
  auto tokens = Tokenize("p(1).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].type, TokenType::kInt);
  EXPECT_EQ((*tokens)[4].type, TokenType::kDot);
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize(R"("hello" "with \"quote\"" "tab\t")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "with \"quote\"");
  EXPECT_EQ((*tokens)[2].text, "tab\t");
}

TEST(LexerTest, UnterminatedStringErrors) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("a % comment :- ignored\nb // also\nc");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // a, b, c, eof
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[2].text, "c");
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("= != <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Types(tokens.value()),
            (std::vector<TokenType>{TokenType::kEq, TokenType::kNe,
                                    TokenType::kNe, TokenType::kLt,
                                    TokenType::kLe, TokenType::kGt,
                                    TokenType::kGe, TokenType::kEof}));
}

TEST(LexerTest, LineTracking) {
  auto tokens = Tokenize("a\nb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 3);
  EXPECT_EQ((*tokens)[2].column, 3);
}

TEST(LexerTest, StrayCharacterErrors) {
  EXPECT_FALSE(Tokenize("p(x) @ q(y)").ok());
  EXPECT_FALSE(Tokenize("p : q").ok());
}

}  // namespace
}  // namespace ivm
