#include "core/delta_rules.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

TEST(DeltaRulesTest, OneDeltaRulePerAtomPosition) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  std::vector<DeltaRule> drs = CompileDeltaRules(p, 0);
  ASSERT_EQ(drs.size(), 2u);
  EXPECT_EQ(drs[0].delta_position, 0);
  EXPECT_EQ(drs[1].delta_position, 1);
}

TEST(DeltaRulesTest, ComparisonsAreNotDeltaPositions) {
  Program p = MustParseProgram(
      "base e(X, Y). p(X) :- e(X, Y), Y > 3, e(Y, X).");
  std::vector<DeltaRule> drs = CompileDeltaRules(p, 0);
  ASSERT_EQ(drs.size(), 2u);
  EXPECT_EQ(drs[0].delta_position, 0);
  EXPECT_EQ(drs[1].delta_position, 2);
}

TEST(DeltaRulesTest, ToStringMatchesExample41) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  std::vector<DeltaRule> drs = CompileDeltaRules(p, 0);
  // (d1): Δhop(X,Y) :- Δ(link(X,Z)) & link(Z,Y).
  EXPECT_EQ(DeltaRuleToString(p, drs[0]),
            "Δhop(X, Y) :- Δ(link(X, Z)) & link(Z, Y).");
  // (d2): Δhop(X,Y) :- link^new(X,Z) & Δ(link(Z,Y)).
  EXPECT_EQ(DeltaRuleToString(p, drs[1]),
            "Δhop(X, Y) :- link(X, Z)^new & Δ(link(Z, Y)).");
}

TEST(DeltaRulesTest, MembershipDelta) {
  Relation stored("r", 1);
  stored.Add(Tup(1), 2);
  stored.Add(Tup(2), 1);
  Relation delta("Δr", 1);
  delta.Add(Tup(1), -1);  // count 2 -> 1: no membership change
  delta.Add(Tup(2), -1);  // count 1 -> 0: leaves the set
  delta.Add(Tup(3), 4);   // enters the set
  Relation md = MembershipDelta(stored, delta);
  EXPECT_FALSE(md.Contains(Tup(1)));
  EXPECT_EQ(md.Count(Tup(2)), -1);
  EXPECT_EQ(md.Count(Tup(3)), 1);
}

/// A DeltaSource over two explicit maps.
class TestSource : public DeltaSource {
 public:
  const Relation* Old(PredicateId pred) const override {
    auto it = old_.find(pred);
    return it == old_.end() ? nullptr : &it->second;
  }
  const Relation* DeltaOf(PredicateId pred) const override {
    auto it = delta_.find(pred);
    return it == delta_.end() ? nullptr : &it->second;
  }
  std::map<PredicateId, Relation> old_;
  std::map<PredicateId, Relation> delta_;
};

TEST(DeltaRulesTest, LoweredDeltaRuleComputesHopDelta) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  PredicateId link = p.Lookup("link").value();

  TestSource source;
  source.old_[link] = testing_util::MustMakeRelation(
      "link", 2, "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  Relation d("Δlink", 2);
  d.Add(Tup("a", "b"), -1);
  source.delta_[link] = d;

  DeltaRuleLowering lowering(p, source, /*multiset_aggregates=*/true,
                             /*counts_as_one=*/false);
  Relation delta_hop("Δhop", 2);
  for (const DeltaRule& dr : CompileDeltaRules(p, 0)) {
    ASSERT_TRUE(lowering.HasWork(dr).value());
    PreparedRule prepared = lowering.Lower(dr).value();
    IVM_EXPECT_OK(EvaluateJoin(prepared, &delta_hop));
  }
  // Deleting link(a,b) removes one derivation of hop(a,c) and of hop(a,e).
  EXPECT_EQ(delta_hop.Count(Tup("a", "c")), -1);
  EXPECT_EQ(delta_hop.Count(Tup("a", "e")), -1);
  EXPECT_EQ(delta_hop.size(), 2u);
}

TEST(DeltaRulesTest, NegationDeltaFollowsDefinition61) {
  Program p = MustParseProgram(
      "base e(X). base q(X). p(X) :- e(X) & !q(X).");
  PredicateId q = p.Lookup("q").value();
  PredicateId e = p.Lookup("e").value();

  TestSource source;
  source.old_[e] = testing_util::MustMakeRelation("e", 1, "e(a). e(b). e(c).");
  source.old_[q] = testing_util::MustMakeRelation("q", 1, "q(a).");
  Relation dq("Δq", 1);
  dq.Add(Tup("a"), -1);  // q(a) deleted -> ¬q(a) becomes true
  dq.Add(Tup("b"), 1);   // q(b) inserted -> ¬q(b) becomes false
  source.delta_[q] = dq;

  DeltaRuleLowering lowering(p, source, true, false);
  Relation delta_p("Δp", 1);
  for (const DeltaRule& dr : CompileDeltaRules(p, 0)) {
    if (!lowering.HasWork(dr).value()) continue;
    PreparedRule prepared = lowering.Lower(dr).value();
    IVM_EXPECT_OK(EvaluateJoin(prepared, &delta_p));
  }
  EXPECT_EQ(delta_p.Count(Tup("a")), 1);
  EXPECT_EQ(delta_p.Count(Tup("b")), -1);
  EXPECT_FALSE(delta_p.Contains(Tup("c")));
}

TEST(DeltaRulesTest, HasWorkFalseWhenNoDeltas) {
  Program p = MustParseProgram(
      "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).");
  PredicateId link = p.Lookup("link").value();
  TestSource source;
  source.old_[link] = testing_util::MustMakeRelation("link", 2, "link(a,b).");
  DeltaRuleLowering lowering(p, source, true, false);
  for (const DeltaRule& dr : CompileDeltaRules(p, 0)) {
    EXPECT_FALSE(lowering.HasWork(dr).value());
  }
}

}  // namespace
}  // namespace ivm
