#include "storage/io.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

TEST(CsvTest, ReadInfersTypes) {
  Relation rel("r", 3);
  IVM_EXPECT_OK(ReadCsvString("a,1,2.5\nb,2,3.25\n", CsvOptions(), &rel));
  EXPECT_EQ(rel.Count(Tup("a", 1, 2.5)), 1);
  EXPECT_EQ(rel.Count(Tup("b", 2, 3.25)), 1);
}

TEST(CsvTest, QuotedFieldsStayStrings) {
  Relation rel("r", 2);
  IVM_EXPECT_OK(ReadCsvString("\"1\",\"he said \"\"hi\"\"\"\n",
                                  CsvOptions(), &rel));
  EXPECT_EQ(rel.Count(Tup("1", "he said \"hi\"")), 1);
}

TEST(CsvTest, DuplicateRowsAccumulateCounts) {
  Relation rel("r", 1);
  IVM_EXPECT_OK(ReadCsvString("x\nx\ny\n", CsvOptions(), &rel));
  EXPECT_EQ(rel.Count(Tup("x")), 2);
  EXPECT_EQ(rel.Count(Tup("y")), 1);
}

TEST(CsvTest, HeaderSkippedAndBlankLinesIgnored) {
  Relation rel("r", 2);
  CsvOptions options;
  options.header = true;
  IVM_EXPECT_OK(ReadCsvString("a,b\n\n1,2\n", options, &rel));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(Tup(1, 2)));
}

TEST(CsvTest, ArityMismatchErrors) {
  Relation rel("r", 2);
  Status s = ReadCsvString("1,2,3\n", CsvOptions(), &rel);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteErrors) {
  Relation rel("r", 1);
  EXPECT_FALSE(ReadCsvString("\"oops\n", CsvOptions(), &rel).ok());
}

TEST(CsvTest, TabDelimiter) {
  Relation rel("r", 2);
  CsvOptions options;
  options.delimiter = '\t';
  IVM_EXPECT_OK(ReadCsvString("a\t1\n", options, &rel));
  EXPECT_TRUE(rel.Contains(Tup("a", 1)));
}

TEST(CsvTest, RoundTrip) {
  Relation rel("r", 2);
  rel.Add(Tup("plain", 1), 1);
  rel.Add(Tup("with,comma", 2), 1);
  rel.Add(Tup("123", 3), 1);  // numeric-looking string must stay a string
  std::string text = WriteCsvString(rel, CsvOptions());
  Relation back("r2", 2);
  IVM_EXPECT_OK(ReadCsvString(text, CsvOptions(), &back));
  EXPECT_EQ(back.ToString(), rel.ToString());
}

TEST(CsvTest, WriteWithCounts) {
  Relation rel("r", 1);
  rel.Add(Tup("x"), 3);
  std::string text = WriteCsvString(rel, CsvOptions(), /*with_counts=*/true);
  EXPECT_EQ(text, "x,3\n");
}

TEST(CsvTest, CrLfHandled) {
  Relation rel("r", 2);
  IVM_EXPECT_OK(ReadCsvString("a,1\r\nb,2\r\n", CsvOptions(), &rel));
  EXPECT_EQ(rel.size(), 2u);
}

}  // namespace
}  // namespace ivm
