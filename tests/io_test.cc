#include "storage/io.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

TEST(CsvTest, ReadInfersTypes) {
  Relation rel("r", 3);
  IVM_EXPECT_OK(ReadCsvString("a,1,2.5\nb,2,3.25\n", CsvOptions(), &rel));
  EXPECT_EQ(rel.Count(Tup("a", 1, 2.5)), 1);
  EXPECT_EQ(rel.Count(Tup("b", 2, 3.25)), 1);
}

TEST(CsvTest, QuotedFieldsStayStrings) {
  Relation rel("r", 2);
  IVM_EXPECT_OK(ReadCsvString("\"1\",\"he said \"\"hi\"\"\"\n",
                                  CsvOptions(), &rel));
  EXPECT_EQ(rel.Count(Tup("1", "he said \"hi\"")), 1);
}

TEST(CsvTest, DuplicateRowsAccumulateCounts) {
  Relation rel("r", 1);
  IVM_EXPECT_OK(ReadCsvString("x\nx\ny\n", CsvOptions(), &rel));
  EXPECT_EQ(rel.Count(Tup("x")), 2);
  EXPECT_EQ(rel.Count(Tup("y")), 1);
}

TEST(CsvTest, HeaderSkippedAndBlankLinesIgnored) {
  Relation rel("r", 2);
  CsvOptions options;
  options.header = true;
  IVM_EXPECT_OK(ReadCsvString("a,b\n\n1,2\n", options, &rel));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(Tup(1, 2)));
}

TEST(CsvTest, ArityMismatchErrors) {
  Relation rel("r", 2);
  Status s = ReadCsvString("1,2,3\n", CsvOptions(), &rel);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteErrors) {
  Relation rel("r", 1);
  EXPECT_FALSE(ReadCsvString("\"oops\n", CsvOptions(), &rel).ok());
}

TEST(CsvTest, TabDelimiter) {
  Relation rel("r", 2);
  CsvOptions options;
  options.delimiter = '\t';
  IVM_EXPECT_OK(ReadCsvString("a\t1\n", options, &rel));
  EXPECT_TRUE(rel.Contains(Tup("a", 1)));
}

TEST(CsvTest, RoundTrip) {
  Relation rel("r", 2);
  rel.Add(Tup("plain", 1), 1);
  rel.Add(Tup("with,comma", 2), 1);
  rel.Add(Tup("123", 3), 1);  // numeric-looking string must stay a string
  std::string text = WriteCsvString(rel, CsvOptions());
  Relation back("r2", 2);
  IVM_EXPECT_OK(ReadCsvString(text, CsvOptions(), &back));
  EXPECT_EQ(back.ToString(), rel.ToString());
}

TEST(CsvTest, WriteWithCounts) {
  Relation rel("r", 1);
  rel.Add(Tup("x"), 3);
  std::string text = WriteCsvString(rel, CsvOptions(), /*with_counts=*/true);
  EXPECT_EQ(text, "x,3\n");
}

TEST(CsvTest, CrLfHandled) {
  Relation rel("r", 2);
  IVM_EXPECT_OK(ReadCsvString("a,1\r\nb,2\r\n", CsvOptions(), &rel));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(CsvTest, UnterminatedQuoteNamesTheLine) {
  Relation rel("r", 1);
  Status s = ReadCsvString("ok\n\"oops\n", CsvOptions(), &rel);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
}

TEST(CsvTest, EmbeddedNulByteErrorsWithLineNumber) {
  Relation rel("r", 2);
  std::string text = "a,b\nc,x";
  text += '\0';
  text += "y\n";
  Status s = ReadCsvString(text, CsvOptions(), &rel);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("NUL"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
}

TEST(CsvTest, Int64OverflowFieldErrorsWithLineNumber) {
  Relation rel("r", 1);
  // One past INT64_MAX: integer syntax, but not representable. Must error
  // rather than silently demote to an inexact double.
  Status s = ReadCsvString("1\n9223372036854775808\n", CsvOptions(), &rel);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("overflow"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
  // Deeply negative too.
  EXPECT_FALSE(
      ReadCsvString("-9223372036854775809\n", CsvOptions(), &rel).ok());
  // The exact bounds still parse as integers.
  Relation ok("r", 1);
  IVM_EXPECT_OK(ReadCsvString(
      "9223372036854775807\n-9223372036854775808\n", CsvOptions(), &ok));
  EXPECT_EQ(ok.Count(Tup(int64_t{9223372036854775807})), 1);
}

TEST(CsvTest, HugeNonIntegerNumbersStillParseAsDoubles) {
  Relation rel("r", 1);
  IVM_EXPECT_OK(ReadCsvString("1e300\n", CsvOptions(), &rel));
  EXPECT_EQ(rel.Count(Tup(1e300)), 1);
}

TEST(CsvTest, CountedRoundTrip) {
  Relation rel("r", 2);
  rel.Add(Tup("a", 1), 3);
  rel.Add(Tup("b", 2), -2);  // deltas carry negative counts
  rel.Add(Tup("42", 0.1), 1);  // number-like string must survive quoting
  const std::string text = WriteCsvString(rel, CsvOptions(), true);
  Relation back("r", 2);
  std::istringstream in(text);
  IVM_EXPECT_OK(ReadCountedCsv(in, CsvOptions(), &back));
  EXPECT_EQ(back, rel) << text;
}

TEST(CsvTest, CountedNullaryRelationRoundTrips) {
  Relation rel("r", 0);
  rel.Add(Tuple(), 5);
  const std::string text = WriteCsvString(rel, CsvOptions(), true);
  Relation back("r", 0);
  std::istringstream in(text);
  IVM_EXPECT_OK(ReadCountedCsv(in, CsvOptions(), &back));
  EXPECT_EQ(back, rel) << text;
}

TEST(CsvTest, CountedRejectsZeroCountAndBadArity) {
  Relation rel("r", 1);
  std::istringstream zero("a,0\n");
  EXPECT_FALSE(ReadCountedCsv(zero, CsvOptions(), &rel).ok());
  std::istringstream missing("a\n");
  EXPECT_FALSE(ReadCountedCsv(missing, CsvOptions(), &rel).ok());
  std::istringstream garbage("a,notacount\n");
  EXPECT_FALSE(ReadCountedCsv(garbage, CsvOptions(), &rel).ok());
}

TEST(CsvTest, DoublesRoundTripExactly) {
  Relation rel("r", 1);
  // (-0.0 is excluded: it writes as "-0", which type inference reads back
  // as the integer 0 — an accepted lossy corner of untyped CSV.)
  for (double d : {0.1, 1.0 / 3.0, 2.5e-10, 1e300, -0.5, 123456.789}) {
    rel.Add(Tup(d), 1);
  }
  const std::string text = WriteCsvString(rel, CsvOptions(), false);
  Relation back("r", 1);
  IVM_EXPECT_OK(ReadCsvString(text, CsvOptions(), &back));
  EXPECT_EQ(back, rel) << text;
}

TEST(CsvTest, LosslessControlCharactersRoundTrip) {
  CsvOptions lossless;
  lossless.lossless = true;
  Relation rel("r", 2);
  rel.Add(Tup(std::string("line1\nline2"), 1), 2);
  rel.Add(Tup(std::string("carriage\rreturn"), 2), 1);
  std::string nul("nul");
  nul += '\0';
  nul += "byte";
  rel.Add(Tup(nul, 3), 1);
  rel.Add(Tup(std::string("back\\slash"), 4), 1);
  rel.Add(Tup(std::string("\\N"), 5), 1);  // marker look-alike stays a string
  rel.Add(Tup(std::string(" \n "), 6), 1);  // escapes + whitespace quoting
  const std::string text = WriteCsvString(rel, lossless, /*with_counts=*/true);
  // The file stays strictly line-oriented: one physical line per tuple, no
  // raw control bytes.
  EXPECT_EQ(text.find('\0'), std::string::npos);
  EXPECT_EQ(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')),
            rel.size());
  Relation back("r", 2);
  std::istringstream in(text);
  IVM_EXPECT_OK(ReadCountedCsv(in, lossless, &back));
  EXPECT_EQ(back, rel) << text;
}

TEST(CsvTest, LosslessKeepsValueKinds) {
  CsvOptions lossless;
  lossless.lossless = true;
  Relation rel("r", 1);
  rel.Add(Tup(2.0), 1);   // plain CSV would re-read this as Int(2)
  rel.Add(Tup(-0.0), 1);  // "-0" corner of the plain encoding
  rel.Add(Tup(int64_t{2}), 1);  // and the real int 2 coexists
  rel.Add(Tuple(std::vector<Value>{Value::Null()}), 1);
  rel.Add(Tup(std::string("")), 1);  // empty string is distinct from Null
  const std::string text = WriteCsvString(rel, lossless, /*with_counts=*/true);
  Relation back("r", 1);
  std::istringstream in(text);
  IVM_EXPECT_OK(ReadCountedCsv(in, lossless, &back));
  EXPECT_EQ(back, rel) << text;
  EXPECT_EQ(back.Count(Tup(2.0)), 1) << text;
  EXPECT_EQ(back.Count(Tup(int64_t{2})), 1) << text;
  EXPECT_EQ(back.Count(Tuple(std::vector<Value>{Value::Null()})), 1) << text;
}

TEST(CsvTest, LosslessRejectsBadEscapesWithLineNumber) {
  CsvOptions lossless;
  lossless.lossless = true;
  Relation rel("r", 1);
  Status dangling = ReadCsvString("ok\nbad\\\n", lossless, &rel);
  ASSERT_FALSE(dangling.ok());
  EXPECT_NE(dangling.message().find("line 2"), std::string::npos)
      << dangling.ToString();
  Status unknown = ReadCsvString("bad\\q\n", lossless, &rel);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.message().find("escape"), std::string::npos)
      << unknown.ToString();
}

TEST(CsvTest, NumberLikeStringsStayStringsAcrossRoundTrip) {
  Relation rel("r", 1);
  rel.Add(Tup("7"), 1);       // would re-parse as int unquoted
  rel.Add(Tup("2.5"), 1);     // would re-parse as double unquoted
  rel.Add(Tup("  pad  "), 1); // whitespace must survive
  rel.Add(Tup(7), 1);         // and coexist with the real int 7
  const std::string text = WriteCsvString(rel, CsvOptions(), false);
  Relation back("r", 1);
  IVM_EXPECT_OK(ReadCsvString(text, CsvOptions(), &back));
  EXPECT_EQ(back, rel) << text;
}

}  // namespace
}  // namespace ivm
