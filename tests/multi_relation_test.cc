// Maintenance over programs joining several distinct base relations —
// exercises delta rules whose positions mix changed and unchanged
// predicates, simultaneous changes to multiple relations in one batch, and
// three-way joins.

#include <gtest/gtest.h>

#include "core/view_manager.h"
#include "test_util.h"

namespace ivm {
namespace {

constexpr const char* kOrdersProgram =
    "base customer(Id, Region).\n"
    "base order_line(Cust, Product, Qty).\n"
    "base price(Product, Unit).\n"
    "revenue(Region, Product, Qty * Unit) :- customer(C, Region) & "
    "order_line(C, Product, Qty) & price(Product, Unit).\n"
    "region_total(R, T) :- groupby(revenue(R, P, V), [R], T = sum(V)).";

std::unique_ptr<ViewManager> MakeOrders(Strategy strategy) {
  auto vm = ViewManager::CreateFromText(
      kOrdersProgram, testing_util::ManagerOptions(strategy));
  vm.status().CheckOK();
  Database db;
  testing_util::MustLoadFacts(&db,
                              "customer(1, east). customer(2, west). "
                              "order_line(1, widget, 3). order_line(2, widget, 2). "
                              "order_line(1, gadget, 1). "
                              "price(widget, 10). price(gadget, 25).");
  (*vm)->Initialize(db).CheckOK();
  return std::move(vm).value();
}

TEST(MultiRelationTest, ThreeWayJoinInitialization) {
  auto vm = MakeOrders(Strategy::kCounting);
  const Relation& revenue = *vm->snapshot().Get("revenue").value();
  EXPECT_TRUE(revenue.Contains(Tup("east", "widget", 30)));
  EXPECT_TRUE(revenue.Contains(Tup("east", "gadget", 25)));
  EXPECT_TRUE(revenue.Contains(Tup("west", "widget", 20)));
  EXPECT_TRUE(vm->snapshot().Get("region_total").value()->Contains(Tup("east", 55)));
}

TEST(MultiRelationTest, SimultaneousChangesToAllThreeRelations) {
  for (Strategy s : {Strategy::kCounting, Strategy::kDRed}) {
    auto vm = MakeOrders(s);
    auto oracle = MakeOrders(Strategy::kRecompute);
    ChangeSet batch;
    batch.Insert("customer", Tup(3, "east"));
    batch.Insert("order_line", Tup(3, "gadget", 4));
    batch.Update("price", Tup("widget", 10), Tup("widget", 12));
    batch.Delete("order_line", Tup(1, "gadget", 1));
    ChangeSet out = vm->Apply(batch).value();
    ChangeSet expected = oracle->Apply(batch).value();
    for (const char* view : {"revenue", "region_total"}) {
      EXPECT_TRUE(vm->snapshot().Get(view).value()->SameSet(
          *oracle->snapshot().Get(view).value()))
          << view << " under " << StrategyName(s);
      EXPECT_EQ(out.Delta(view).ToString(), expected.Delta(view).ToString())
          << view << " under " << StrategyName(s);
    }
    EXPECT_TRUE(
        vm->snapshot().Get("region_total").value()->Contains(Tup("east", 136)));
  }
}

TEST(MultiRelationTest, PriceChangeRipplesThroughJoin) {
  auto vm = MakeOrders(Strategy::kCounting);
  ChangeSet reprice;
  reprice.Update("price", Tup("gadget", 25), Tup("gadget", 30));
  ChangeSet out = vm->Apply(reprice).value();
  EXPECT_EQ(out.Delta("revenue").Count(Tup("east", "gadget", 25)), -1);
  EXPECT_EQ(out.Delta("revenue").Count(Tup("east", "gadget", 30)), 1);
  EXPECT_EQ(out.Delta("region_total").Count(Tup("east", 55)), -1);
  EXPECT_EQ(out.Delta("region_total").Count(Tup("east", 60)), 1);
}

TEST(MultiRelationTest, CustomerMoveViaUpdate) {
  auto vm = MakeOrders(Strategy::kCounting);
  ChangeSet move;
  move.Update("customer", Tup(1, "east"), Tup(1, "west"));
  ChangeSet out = vm->Apply(move).value();
  // All of customer 1's revenue moves from east to west.
  EXPECT_FALSE(vm->snapshot().Get("region_total").value()->Contains(Tup("east", 55)));
  EXPECT_TRUE(vm->snapshot().Get("region_total").value()->Contains(Tup("west", 75)));
  EXPECT_EQ(out.Delta("region_total").Count(Tup("west", 20)), -1);
}

TEST(MultiRelationTest, DanglingJoinPartnersProduceNothing) {
  auto vm = MakeOrders(Strategy::kCounting);
  // Order for a product without a price: no revenue rows appear.
  ChangeSet dangling;
  dangling.Insert("order_line", Tup(1, "unknown_product", 9));
  ChangeSet out = vm->Apply(dangling).value();
  EXPECT_TRUE(out.empty());
  // Adding the price later completes the join.
  ChangeSet add_price;
  add_price.Insert("price", Tup("unknown_product", 2));
  ChangeSet out2 = vm->Apply(add_price).value();
  EXPECT_EQ(out2.Delta("revenue").Count(Tup("east", "unknown_product", 18)), 1);
}

}  // namespace
}  // namespace ivm
