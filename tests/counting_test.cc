#include "core/counting.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ivm {
namespace {

using testing_util::MustParseProgram;

constexpr const char* kHopProgram =
    "base link(S, D). hop(X, Y) :- link(X, Z) & link(Z, Y).";

std::unique_ptr<CountingMaintainer> MakeHop(Semantics semantics,
                                            const std::string& facts) {
  auto m = CountingMaintainer::Create(MustParseProgram(kHopProgram), semantics);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  Database db;
  testing_util::MustLoadFacts(&db, facts);
  if (!db.Has("link")) db.CreateRelation("link", 2).CheckOK();
  (*m)->Initialize(db).CheckOK();
  return std::move(m).value();
}

TEST(CountingTest, RejectsRecursivePrograms) {
  auto m = CountingMaintainer::Create(
      MustParseProgram("base e(X, Y). p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z) & e(Z, Y)."),
      Semantics::kSet);
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CountingTest, InitializeStoresCounts) {
  auto m = MakeHop(Semantics::kDuplicate,
                   "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  const Relation& hop = *m->GetRelation("hop").value();
  EXPECT_EQ(hop.Count(Tup("a", "c")), 2);
  EXPECT_EQ(hop.Count(Tup("a", "e")), 1);
}

TEST(CountingTest, Example11DeleteLinkAB) {
  // The paper's running example: deleting link(a,b) must delete hop(a,e)
  // only — hop(a,c) retains one derivation.
  auto m = MakeHop(Semantics::kSet,
                   "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  const Relation& delta = out.Delta("hop");
  EXPECT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.Count(Tup("a", "e")), -1);
  const Relation& hop = *m->GetRelation("hop").value();
  EXPECT_TRUE(hop.Contains(Tup("a", "c")));
  EXPECT_FALSE(hop.Contains(Tup("a", "e")));
}

TEST(CountingTest, DuplicateSemanticsReportsCountChanges) {
  auto m = MakeHop(Semantics::kDuplicate,
                   "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  ChangeSet out = m->Apply(changes).value();
  const Relation& delta = out.Delta("hop");
  // Under duplicate semantics the count drop of hop(a,c) is reported too.
  EXPECT_EQ(delta.Count(Tup("a", "c")), -1);
  EXPECT_EQ(delta.Count(Tup("a", "e")), -1);
  EXPECT_EQ(m->GetRelation("hop").value()->Count(Tup("a", "c")), 1);
}

TEST(CountingTest, InsertionCreatesNewDerivations) {
  auto m = MakeHop(Semantics::kDuplicate, "link(a,b).");
  ChangeSet changes;
  changes.Insert("link", Tup("b", "c"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "c")), 1);
  EXPECT_EQ(m->GetRelation("hop").value()->Count(Tup("a", "c")), 1);
}

TEST(CountingTest, SelfJoinDeltaHandlesBothPositions) {
  // Inserting a single link that joins with itself: link(x,x) gives hop(x,x).
  auto m = MakeHop(Semantics::kDuplicate, "link(a,b).");
  ChangeSet changes;
  changes.Insert("link", Tup("x", "x"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("x", "x")), 1);
}

TEST(CountingTest, UpdateIsDeletePlusInsert) {
  auto m = MakeHop(Semantics::kSet, "link(a,b). link(b,c).");
  ChangeSet changes;
  changes.Update("link", Tup("b", "c"), Tup("b", "d"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "c")), -1);
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "d")), 1);
}

TEST(CountingTest, Example42FullDeltaPropagation) {
  // link = {ab, ad, dc, bc, ch, fg}; Δlink = {ab -1, df +1, af +1}.
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kDuplicate).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).");
  m->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  changes.Insert("link", Tup("d", "f"));
  changes.Insert("link", Tup("a", "f"));
  ChangeSet out = m->Apply(changes).value();

  // Δ(hop) = {ac -1, ag +1, dg +1, af +1}  (af via a->d->f... wait: the
  // paper's Δ(hop) = {ac -1, ag, dg} from rule Δ1 and {af} from Δ2).
  const Relation& dhop = out.Delta("hop");
  EXPECT_EQ(dhop.Count(Tup("a", "c")), -1);
  EXPECT_EQ(dhop.Count(Tup("a", "g")), 1);
  EXPECT_EQ(dhop.Count(Tup("d", "g")), 1);
  EXPECT_EQ(dhop.Count(Tup("a", "f")), 1);
  EXPECT_EQ(dhop.size(), 4u);

  // hop^new = {ac, af, ag, dg, dh, bh}.
  const Relation& hop = *m->GetRelation("hop").value();
  EXPECT_EQ(hop.size(), 6u);
  EXPECT_EQ(hop.Count(Tup("a", "c")), 1);

  // Δ(tri_hop) = {ah -1, ag +1}; tri_hop^new = {ah 1, ag 1}.
  const Relation& dtri = out.Delta("tri_hop");
  EXPECT_EQ(dtri.Count(Tup("a", "h")), -1);
  EXPECT_EQ(dtri.Count(Tup("a", "g")), 1);
  const Relation& tri = *m->GetRelation("tri_hop").value();
  EXPECT_EQ(tri.Count(Tup("a", "h")), 1);
  EXPECT_EQ(tri.Count(Tup("a", "g")), 1);
  EXPECT_EQ(tri.size(), 2u);
}

TEST(CountingTest, Example51SetOptimizationStopsCascade) {
  // Same as Example 4.2 but with set semantics: the count-only change of
  // hop(a,c) must NOT cascade into tri_hop (tuple (ah -1) is not derived).
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).");
  m->Initialize(db).CheckOK();

  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  changes.Insert("link", Tup("d", "f"));
  changes.Insert("link", Tup("a", "f"));
  ChangeSet out = m->Apply(changes).value();

  // Δ(hop) as a set change = {af, ag, dg} — ac stays (Example 5.1).
  const Relation& dhop = out.Delta("hop");
  EXPECT_FALSE(dhop.Contains(Tup("a", "c")));
  EXPECT_EQ(dhop.Count(Tup("a", "f")), 1);
  EXPECT_EQ(dhop.Count(Tup("a", "g")), 1);
  EXPECT_EQ(dhop.Count(Tup("d", "g")), 1);
  EXPECT_EQ(dhop.size(), 3u);

  // tri_hop gains ag (and ah is NOT deleted).
  const Relation& dtri = out.Delta("tri_hop");
  EXPECT_FALSE(dtri.Contains(Tup("a", "h")));
  EXPECT_EQ(dtri.Count(Tup("a", "g")), 1);
  EXPECT_TRUE(m->GetRelation("tri_hop").value()->Contains(Tup("a", "h")));
}

TEST(CountingTest, NegationMaintenance) {
  Program p = MustParseProgram(
      "base e(X). base q(X). p(X) :- e(X) & !q(X).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(&db, "e(a). e(b). q(b).");
  m->Initialize(db).CheckOK();
  EXPECT_TRUE(m->GetRelation("p").value()->Contains(Tup("a")));
  EXPECT_FALSE(m->GetRelation("p").value()->Contains(Tup("b")));

  // Delete q(b): p(b) appears. Insert q(a): p(a) disappears.
  ChangeSet changes;
  changes.Delete("q", Tup("b"));
  changes.Insert("q", Tup("a"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("p").Count(Tup("b")), 1);
  EXPECT_EQ(out.Delta("p").Count(Tup("a")), -1);
  EXPECT_TRUE(m->GetRelation("p").value()->Contains(Tup("b")));
  EXPECT_FALSE(m->GetRelation("p").value()->Contains(Tup("a")));
}

TEST(CountingTest, OnlyTriHopExample61Maintenance) {
  Program p = MustParseProgram(
      "base link(S, D).\n"
      "hop(X, Y) :- link(X, Z) & link(Z, Y).\n"
      "tri_hop(X, Y) :- hop(X, Z) & link(Z, Y).\n"
      "only_tri_hop(X, Y) :- tri_hop(X, Y) & !hop(X, Y).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(
      &db,
      "link(a,b). link(a,e). link(a,f). link(a,g). link(b,c). link(c,d). "
      "link(c,k). link(e,d). link(f,d). link(g,h). link(h,k).");
  m->Initialize(db).CheckOK();
  EXPECT_EQ(m->GetRelation("only_tri_hop").value()->ToString(),
            "{(\"a\", \"k\")}");

  // Insert link(a,c): hop(a,k) appears (a->c->k)... so only_tri_hop(a,k)
  // must disappear, and hop(a,d) gets another derivation.
  ChangeSet changes;
  changes.Insert("link", Tup("a", "c"));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("only_tri_hop").Count(Tup("a", "k")), -1);
  EXPECT_FALSE(m->GetRelation("only_tri_hop").value()->Contains(Tup("a", "k")));
}

TEST(CountingTest, AggregateMinMaintenance) {
  Program p = MustParseProgram(
      "base link(S, D, C).\n"
      "hop(S, D, C1 + C2) :- link(S, I, C1) & link(I, D, C2).\n"
      "min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(
      &db, "link(a, b, 1). link(b, c, 2). link(a, d, 5). link(d, c, 1).");
  m->Initialize(db).CheckOK();
  EXPECT_TRUE(m->GetRelation("min_cost_hop").value()->Contains(Tup("a", "c", 3)));

  // Insert a cheaper path a->x->c with cost 1+1=2: min drops to 2.
  ChangeSet changes;
  changes.Insert("link", Tup("a", "x", 1));
  changes.Insert("link", Tup("x", "c", 1));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("min_cost_hop").Count(Tup("a", "c", 3)), -1);
  EXPECT_EQ(out.Delta("min_cost_hop").Count(Tup("a", "c", 2)), 1);
  EXPECT_TRUE(m->GetRelation("min_cost_hop").value()->Contains(Tup("a", "c", 2)));

  // Delete the cheap path: min goes back to 3.
  ChangeSet undo;
  undo.Delete("link", Tup("a", "x", 1));
  ChangeSet out2 = m->Apply(undo).value();
  EXPECT_EQ(out2.Delta("min_cost_hop").Count(Tup("a", "c", 2)), -1);
  EXPECT_EQ(out2.Delta("min_cost_hop").Count(Tup("a", "c", 3)), 1);
}

TEST(CountingTest, AggregateSumOverBaseRelation) {
  Program p = MustParseProgram(
      "base sales(Region, Amount).\n"
      "total(R, T) :- groupby(sales(R, A), [R], T = sum(A)).");
  auto m = CountingMaintainer::Create(std::move(p), Semantics::kSet).value();
  Database db;
  testing_util::MustLoadFacts(&db, "sales(east, 10). sales(east, 5). sales(west, 7).");
  m->Initialize(db).CheckOK();
  EXPECT_TRUE(m->GetRelation("total").value()->Contains(Tup("east", 15)));

  ChangeSet changes;
  changes.Insert("sales", Tup("east", 3));
  changes.Delete("sales", Tup("west", 7));
  ChangeSet out = m->Apply(changes).value();
  EXPECT_EQ(out.Delta("total").Count(Tup("east", 15)), -1);
  EXPECT_EQ(out.Delta("total").Count(Tup("east", 18)), 1);
  EXPECT_EQ(out.Delta("total").Count(Tup("west", 7)), -1);
  EXPECT_EQ(m->GetRelation("total").value()->size(), 1u);
}

TEST(CountingTest, ErrorOnDeletingAbsentTuple) {
  auto m = MakeHop(Semantics::kSet, "link(a,b).");
  ChangeSet changes;
  changes.Delete("link", Tup("z", "z"));
  EXPECT_EQ(m->Apply(changes).status().code(), StatusCode::kFailedPrecondition);
}

TEST(CountingTest, ErrorOnModifyingView) {
  auto m = MakeHop(Semantics::kSet, "link(a,b).");
  ChangeSet changes;
  changes.Insert("hop", Tup("x", "y"));
  EXPECT_EQ(m->Apply(changes).status().code(), StatusCode::kInvalidArgument);
}

TEST(CountingTest, ErrorBeforeInitialize) {
  auto m = CountingMaintainer::Create(MustParseProgram(kHopProgram),
                                      Semantics::kSet).value();
  ChangeSet changes;
  changes.Insert("link", Tup("a", "b"));
  EXPECT_EQ(m->Apply(changes).status().code(), StatusCode::kFailedPrecondition);
}

TEST(CountingTest, RedundantSetInsertIsNoop) {
  auto m = MakeHop(Semantics::kSet, "link(a,b). link(b,c).");
  ChangeSet changes;
  changes.Insert("link", Tup("a", "b"));  // already present
  ChangeSet out = m->Apply(changes).value();
  EXPECT_TRUE(out.empty());
}

TEST(CountingTest, DuplicateSemanticsTracksMultiplicity) {
  auto m = MakeHop(Semantics::kDuplicate, "link(a,b). link(b,c).");
  ChangeSet changes;
  changes.Insert("link", Tup("a", "b"));  // second copy
  ChangeSet out = m->Apply(changes).value();
  // hop(a,c) now has 2 derivations (2 copies of link(a,b) × link(b,c)).
  EXPECT_EQ(out.Delta("hop").Count(Tup("a", "c")), 1);
  EXPECT_EQ(m->GetRelation("hop").value()->Count(Tup("a", "c")), 2);
}

TEST(CountingTest, LongSequenceOfBatchesMatchesRecompute) {
  auto m = MakeHop(Semantics::kSet, "link(a,b). link(b,c). link(c,d).");
  // Apply a sequence of batches; after each, hop must equal the from-scratch
  // evaluation.
  const char* batches[][2] = {
      {"ins", "c e"}, {"ins", "d e"}, {"del", "b c"},
      {"ins", "b c"}, {"del", "a b"}, {"ins", "e a"},
  };
  Program oracle_prog = MustParseProgram(kHopProgram);
  for (const auto& batch : batches) {
    ChangeSet changes;
    std::string src(1, batch[1][0]);
    std::string dst(1, batch[1][2]);
    if (std::string(batch[0]) == "ins") {
      changes.Insert("link", Tup(src, dst));
    } else {
      changes.Delete("link", Tup(src, dst));
    }
    m->Apply(changes).value();
    // Oracle: evaluate from the maintainer's own base snapshot.
    Database db2;
    db2.CreateRelation("link", 2).CheckOK();
    for (const auto& [t, c] : m->GetRelation("link").value()->tuples()) {
      db2.mutable_relation("link").Add(t, c);
    }
    Evaluator ev(oracle_prog, {Semantics::kSet, false});
    std::map<PredicateId, Relation> views;
    ev.EvaluateAll(db2, &views).CheckOK();
    const Relation& expected = views.at(oracle_prog.Lookup("hop").value());
    EXPECT_TRUE(m->GetRelation("hop").value()->SameSet(expected))
        << "after batch " << batch[0] << " " << batch[1];
  }
}

TEST(CountingTest, TheoremFourOneDeltaEqualsCountDifference) {
  // Δ(t) must equal count_new(t) - count_old(t) for every tuple.
  auto m = MakeHop(Semantics::kDuplicate,
                   "link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).");
  Relation before = *m->GetRelation("hop").value();
  ChangeSet changes;
  changes.Delete("link", Tup("a", "b"));
  changes.Insert("link", Tup("d", "e"));
  ChangeSet out = m->Apply(changes).value();
  const Relation& after = *m->GetRelation("hop").value();
  const Relation& delta = out.Delta("hop");
  // Check on the union of tuples.
  for (const auto& [t, c] : before.tuples()) {
    EXPECT_EQ(delta.Count(t), after.Count(t) - c) << t.ToString();
  }
  for (const auto& [t, c] : after.tuples()) {
    EXPECT_EQ(delta.Count(t), c - before.Count(t)) << t.ToString();
  }
}

}  // namespace
}  // namespace ivm
