#include "storage/relation.h"

#include <limits>

#include <gtest/gtest.h>

namespace ivm {
namespace {

TEST(RelationTest, AddMergesCountsAndErasesZero) {
  Relation r("r", 2);
  r.Add(Tup("a", "b"), 1);
  r.Add(Tup("a", "b"), 2);
  EXPECT_EQ(r.Count(Tup("a", "b")), 3);
  EXPECT_EQ(r.size(), 1u);
  r.Add(Tup("a", "b"), -3);
  EXPECT_FALSE(r.Contains(Tup("a", "b")));
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, NegativeCountsRepresentDeletions) {
  Relation delta("Δr", 2);
  delta.Add(Tup("a", "b"), -2);
  EXPECT_EQ(delta.Count(Tup("a", "b")), -2);
  EXPECT_TRUE(delta.HasNegativeCounts());
  EXPECT_TRUE(delta.Contains(Tup("a", "b")));  // present with count != 0
}

TEST(RelationTest, UPlusMatchesSectionThreeSemantics) {
  // Δ(P) = {ab 4, mn -2} per the paper's Definition 3.2 example.
  Relation p("p", 2);
  p.Add(Tup("a", "b"), 1);
  p.Add(Tup("m", "n"), 2);
  Relation dp("Δp", 2);
  dp.Add(Tup("a", "b"), 4);
  dp.Add(Tup("m", "n"), -2);
  Relation merged = Relation::UPlus(p, dp);
  EXPECT_EQ(merged.Count(Tup("a", "b")), 5);
  EXPECT_FALSE(merged.Contains(Tup("m", "n")));  // counts cancel to zero
}

TEST(RelationTest, UPlusKeepsDisjointTuples) {
  Relation a("a", 1), b("b", 1);
  a.Add(Tup(1), 1);
  b.Add(Tup(2), 3);
  Relation u = Relation::UPlus(a, b);
  EXPECT_EQ(u.Count(Tup(1)), 1);
  EXPECT_EQ(u.Count(Tup(2)), 3);
}

TEST(RelationTest, AsSetProjectsCountsToOne) {
  Relation r("r", 1);
  r.Add(Tup(1), 5);
  r.Add(Tup(2), 1);
  Relation s = r.AsSet();
  EXPECT_EQ(s.Count(Tup(1)), 1);
  EXPECT_EQ(s.Count(Tup(2)), 1);
  EXPECT_TRUE(s.SameSet(r));
}

TEST(RelationTest, SetDifference) {
  Relation now("now", 1), before("before", 1);
  now.Add(Tup(1), 7);   // stays (count irrelevant)
  now.Add(Tup(2), 1);   // inserted
  before.Add(Tup(1), 2);
  before.Add(Tup(3), 1);  // deleted
  Relation diff = Relation::SetDifference(now, before);
  EXPECT_EQ(diff.Count(Tup(2)), 1);
  EXPECT_EQ(diff.Count(Tup(3)), -1);
  EXPECT_FALSE(diff.Contains(Tup(1)));
}

TEST(RelationTest, SameSetIgnoresCounts) {
  Relation a("a", 1), b("b", 1);
  a.Add(Tup(1), 5);
  b.Add(Tup(1), 1);
  EXPECT_TRUE(a.SameSet(b));
  b.Add(Tup(2), 1);
  EXPECT_FALSE(a.SameSet(b));
}

TEST(RelationTest, ToStringIsSortedAndShowsCounts) {
  Relation r("r", 2);
  r.Add(Tup("b", "b"), 1);
  r.Add(Tup("a", "c"), 2);
  EXPECT_EQ(r.ToString(), "{(\"a\", \"c\"):2, (\"b\", \"b\")}");
}

TEST(RelationTest, VersionBumpsOnModification) {
  Relation r("r", 1);
  uint64_t v0 = r.version();
  r.Add(Tup(1), 1);
  EXPECT_GT(r.version(), v0);
}

TEST(RelationTest, IndexLookup) {
  Relation r("edge", 2);
  r.Add(Tup(1, 2), 1);
  r.Add(Tup(1, 3), 2);
  r.Add(Tup(2, 3), 1);
  const Index& by_src = r.GetIndex({0});
  const auto* entries = by_src.Lookup(Tup(1));
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ(by_src.Lookup(Tup(9)), nullptr);
}

TEST(RelationTest, IndexRebuildsAfterModification) {
  Relation r("edge", 2);
  r.Add(Tup(1, 2), 1);
  const Index& idx1 = r.GetIndex({0});
  EXPECT_NE(idx1.Lookup(Tup(1)), nullptr);
  r.Add(Tup(1, 5), 1);
  const Index& idx2 = r.GetIndex({0});
  const auto* entries = idx2.Lookup(Tup(1));
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->size(), 2u);
}

TEST(RelationTest, IndexOnMultipleColumns) {
  Relation r("t", 3);
  r.Add(Tup(1, 2, 3), 1);
  r.Add(Tup(1, 2, 4), 1);
  r.Add(Tup(1, 5, 3), 1);
  const Index& idx = r.GetIndex({0, 1});
  const auto* entries = idx.Lookup(Tup(1, 2));
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->size(), 2u);
}

TEST(RelationTest, TotalCount) {
  Relation r("r", 1);
  r.Add(Tup(1), 2);
  r.Add(Tup(2), -5);
  EXPECT_EQ(r.TotalCount(), -3);
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, CopyDropsIndexCacheButKeepsData) {
  Relation r("r", 2);
  r.Add(Tup(1, 2), 1);
  r.GetIndex({0});
  Relation copy = r;
  EXPECT_EQ(copy.Count(Tup(1, 2)), 1);
  const Index& idx = copy.GetIndex({0});
  EXPECT_NE(idx.Lookup(Tup(1)), nullptr);
}

TEST(RelationTest, CountOverflowSaturatesAndSticks) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  Relation r("r", 1);
  r.Add(Tup(1), kMax);
  EXPECT_FALSE(r.overflowed());
  r.Add(Tup(1), 1);  // kMax + 1: saturates, no wrap
  EXPECT_EQ(r.Count(Tup(1)), kMax);
  EXPECT_TRUE(r.overflowed());
  // The flag is sticky: later valid mutations don't clear it.
  r.Add(Tup(2), 1);
  EXPECT_TRUE(r.overflowed());

  Relation neg("r", 1);
  neg.Add(Tup(1), kMin);
  neg.Add(Tup(1), -1);
  EXPECT_EQ(neg.Count(Tup(1)), kMin);
  EXPECT_TRUE(neg.overflowed());
}

TEST(RelationTest, UnionInPlacePropagatesOverflow) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  Relation a("r", 1);
  a.Add(Tup(1), kMax);
  Relation b("r", 1);
  b.Add(Tup(1), kMax);
  a.UnionInPlace(b);
  EXPECT_TRUE(a.overflowed());
  EXPECT_EQ(a.Count(Tup(1)), kMax);
}

TEST(RelationTest, SetOverflowedRestoresFlag) {
  Relation r("r", 1);
  r.set_overflowed(true);
  EXPECT_TRUE(r.overflowed());
  r.set_overflowed(false);
  EXPECT_FALSE(r.overflowed());
}

}  // namespace
}  // namespace ivm
